//! Semantic lowering: AST → [`ssync_circuit::Circuit`].
//!
//! The lowering walks the program in source order, maintaining
//!
//! * a **quantum register table** — every `qreg` is assigned a contiguous
//!   block of the flat qubit index space, in declaration order, so a
//!   program with `qreg a[3]; qreg b[2];` lowers to a 5-qubit circuit
//!   with `a[0..3] ↦ q0..q2`, `b[0..2] ↦ q3..q4`;
//! * a **classical register table** — tracked only for validation
//!   (measure targets, `if` guards) since the IR is purely quantum;
//! * a **user gate table** — `gate` definitions are *inlined recursively*
//!   at every application: formals bind to concrete qubits, parameter
//!   expressions evaluate in the caller's environment, and the body
//!   expands gate by gate. Definitions must precede use (QASM 2.0 rules),
//!   which also rules out recursion.
//!
//! The **built-in table** covers `U`/`CX` and the `qelib1.inc` standard
//! library (`u1..u3`, Paulis, `h`, `s`/`t` and adjoints, rotations,
//! controlled gates, `swap`, `ccx`, `cswap`, `rxx`/`rzz`), plus the
//! trapped-ion natives `ms` and `ryy` this workspace's exporter emits.
//! Built-in names always win over user definitions of the same name — a
//! benchmark that inlines the standard library's own definitions (common
//! in circuit dumps) lowers to the native gates rather than their
//! decompositions, which keeps export→import round-trips exact.
//!
//! Gates with no native IR equivalent lower to standard decompositions
//! over the IR's gate set (`z → rz(π)`, `ccx` → the textbook 6-CX
//! network, ...); identity-angle rotations from `u3` lowering are
//! dropped. Measurements, resets and `if`-guarded applications are
//! **stripped** — the QCCD compiler schedules unitary circuits — and
//! counted in the [`ParseReport`] so callers can surface a warning.
//! `barrier` is validated and counted; because the IR preserves program
//! order and the downstream dependency DAG never reorders gates on a
//! qubit, the fence each barrier imposes on the qubits it names is
//! respected by construction.

use crate::ast::{Argument, BinOp, BodyStatement, Expr, GateApply, GateDef, Program, Statement};
use crate::error::{QasmError, QasmErrorKind, SourcePos};
use ssync_circuit::{Circuit, CircuitError, Gate, Qubit};
use std::collections::HashMap;
use std::f64::consts::PI;

/// What the lowering stripped or merely counted, so callers can warn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseReport {
    /// `measure` statements dropped (the IR is purely unitary).
    pub measurements_stripped: usize,
    /// `reset` statements dropped.
    pub resets_stripped: usize,
    /// `if`-guarded operations (gate applications, measures or resets)
    /// dropped — classical control needs measurement results a static
    /// compiler does not have. The guarded operation is still fully
    /// validated before being stripped.
    pub conditionals_stripped: usize,
    /// `barrier` statements seen (validated, counted, and respected by
    /// program order — see the module docs).
    pub barriers: usize,
    /// User-defined gate applications expanded by inlining.
    pub gates_inlined: usize,
}

impl ParseReport {
    /// `true` when anything was stripped (worth a warning to the user).
    pub fn stripped_anything(&self) -> bool {
        self.measurements_stripped + self.resets_stripped + self.conditionals_stripped > 0
    }
}

/// A lowered program: the circuit plus the lowering report.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseOutput {
    /// The flattened circuit (one qubit per declared qreg element).
    pub circuit: Circuit,
    /// Warning counters from the lowering.
    pub report: ParseReport,
}

/// Lowers a parsed program into a circuit.
///
/// # Errors
///
/// Returns the first semantic error (unknown gate or register, arity or
/// index violation, bad expression, ...) with its source position.
pub fn lower(program: &Program) -> Result<ParseOutput, QasmError> {
    let mut lowerer = Lowerer::default();
    lowerer.declare_all(program)?;
    lowerer.circuit = Circuit::new(lowerer.num_qubits);
    for statement in &program.statements {
        lowerer.statement(statement)?;
    }
    Ok(ParseOutput { circuit: lowerer.circuit, report: lowerer.report })
}

/// One declared quantum register: its flat-index offset and size.
#[derive(Debug, Clone, Copy)]
struct QregEntry {
    offset: usize,
    size: usize,
}

#[derive(Default)]
struct Lowerer {
    circuit: Circuit,
    num_qubits: usize,
    qregs: HashMap<String, QregEntry>,
    cregs: HashMap<String, usize>,
    gates: HashMap<String, GateDef>,
    opaques: HashMap<String, (usize, usize)>,
    report: ParseReport,
}

impl Lowerer {
    /// First pass: register/gate declarations, so the register width is
    /// known before any gate lowers (QASM requires declaration before use
    /// anyway; this pass just sizes the circuit and catches clashes).
    fn declare_all(&mut self, program: &Program) -> Result<(), QasmError> {
        for statement in &program.statements {
            match statement {
                Statement::QregDecl(decl) => {
                    if decl.size == 0 {
                        return Err(QasmError::new(
                            QasmErrorKind::EmptyRegister(decl.name.clone()),
                            decl.pos,
                        ));
                    }
                    if self.qregs.contains_key(&decl.name) || self.cregs.contains_key(&decl.name) {
                        return Err(QasmError::new(
                            QasmErrorKind::Redefinition(decl.name.clone()),
                            decl.pos,
                        ));
                    }
                    self.qregs.insert(
                        decl.name.clone(),
                        QregEntry { offset: self.num_qubits, size: decl.size },
                    );
                    self.num_qubits += decl.size;
                }
                Statement::CregDecl(decl) => {
                    if decl.size == 0 {
                        return Err(QasmError::new(
                            QasmErrorKind::EmptyRegister(decl.name.clone()),
                            decl.pos,
                        ));
                    }
                    if self.qregs.contains_key(&decl.name) || self.cregs.contains_key(&decl.name) {
                        return Err(QasmError::new(
                            QasmErrorKind::Redefinition(decl.name.clone()),
                            decl.pos,
                        ));
                    }
                    self.cregs.insert(decl.name.clone(), decl.size);
                }
                Statement::GateDef(def) => self.declare_gate(def)?,
                Statement::OpaqueDef(def) => {
                    if self.opaques.contains_key(&def.name) || self.gates.contains_key(&def.name) {
                        return Err(QasmError::new(
                            QasmErrorKind::Redefinition(def.name.clone()),
                            def.pos,
                        ));
                    }
                    self.opaques.insert(def.name.clone(), (def.params.len(), def.qubits.len()));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Validates a `gate` definition at declaration time: every body
    /// application must reference a built-in or *previously defined* gate
    /// with matching arity, over formal qubits (no indexing) and
    /// parameters in scope. Self-reference is reported as recursion.
    fn declare_gate(&mut self, def: &GateDef) -> Result<(), QasmError> {
        if self.gates.contains_key(&def.name) || self.opaques.contains_key(&def.name) {
            // Built-in names may be "redefined" (circuit dumps inline the
            // standard library); the built-in table wins at application
            // time, so the duplicate definition is simply ignored.
            if native_signature(&def.name).is_none() {
                return Err(QasmError::new(QasmErrorKind::Redefinition(def.name.clone()), def.pos));
            }
        }
        for body in &def.body {
            let BodyStatement::Apply(apply) = body else { continue };
            if apply.name == def.name {
                return Err(QasmError::new(
                    QasmErrorKind::RecursiveGate(def.name.clone()),
                    apply.pos,
                ));
            }
            let (want_params, want_qubits) = match native_signature(&apply.name) {
                Some(sig) => sig,
                None => match self.gates.get(&apply.name) {
                    Some(inner) => (inner.params.len(), inner.qubits.len()),
                    None => {
                        return Err(QasmError::new(
                            QasmErrorKind::UnknownGate(apply.name.clone()),
                            apply.pos,
                        ))
                    }
                },
            };
            check_arity(&apply.name, want_params, apply.params.len(), "parameters", apply.pos)?;
            check_arity(&apply.name, want_qubits, apply.args.len(), "qubit arguments", apply.pos)?;
            for arg in &apply.args {
                if arg.index.is_some() || !def.qubits.contains(&arg.register) {
                    return Err(QasmError::new(
                        QasmErrorKind::UnknownRegister(arg.register.clone()),
                        arg.pos,
                    ));
                }
            }
            for param in &apply.params {
                validate_params_in_scope(param, &def.params)?;
            }
        }
        if native_signature(&def.name).is_none() {
            self.gates.insert(def.name.clone(), def.clone());
        }
        Ok(())
    }

    fn statement(&mut self, statement: &Statement) -> Result<(), QasmError> {
        match statement {
            Statement::QregDecl(_)
            | Statement::CregDecl(_)
            | Statement::GateDef(_)
            | Statement::OpaqueDef(_) => Ok(()), // handled by declare_all
            Statement::Apply(apply) => self.apply_broadcast(apply),
            Statement::Barrier { args, pos } => {
                for arg in args {
                    self.resolve_argument(arg)?;
                }
                let _ = pos;
                self.report.barriers += 1;
                Ok(())
            }
            Statement::Measure { source, .. } => {
                self.resolve_argument(source)?;
                self.report.measurements_stripped += 1;
                Ok(())
            }
            Statement::Reset { target, .. } => {
                self.resolve_argument(target)?;
                self.report.resets_stripped += 1;
                Ok(())
            }
            Statement::Conditional { guard, body, pos } => {
                // Strip, but validate everything the unconditional form
                // would: the guard creg must exist, and the guarded qop's
                // registers/gate/arity/parameters must all check out — a
                // typo inside `if (...)` is still a typo.
                if !self.cregs.contains_key(guard) {
                    return Err(QasmError::new(
                        QasmErrorKind::UnknownRegister(guard.clone()),
                        *pos,
                    ));
                }
                match &**body {
                    Statement::Apply(apply) => self.validate_apply(apply)?,
                    Statement::Measure { source, .. } => {
                        self.resolve_argument(source)?;
                    }
                    Statement::Reset { target, .. } => {
                        self.resolve_argument(target)?;
                    }
                    other => unreachable!("parser only guards qops, got {other:?}"),
                }
                self.report.conditionals_stripped += 1;
                Ok(())
            }
        }
    }

    /// Validates a gate application — registers resolve, the gate exists
    /// (built-in or user-defined) with matching arities, parameters
    /// evaluate — without emitting anything. Used for `if`-guarded
    /// applications, which are stripped but must still be well-formed.
    fn validate_apply(&self, apply: &GateApply) -> Result<(), QasmError> {
        for arg in &apply.args {
            self.resolve_argument(arg)?;
        }
        let params: Vec<f64> =
            apply.params.iter().map(|p| eval_expr(p, None)).collect::<Result<_, _>>()?;
        let (want_params, want_qubits) = match native_signature(&apply.name) {
            Some(sig) => sig,
            None => match self.gates.get(&apply.name) {
                Some(def) => (def.params.len(), def.qubits.len()),
                None => {
                    return Err(QasmError::new(
                        QasmErrorKind::UnknownGate(apply.name.clone()),
                        apply.pos,
                    ))
                }
            },
        };
        check_arity(&apply.name, want_params, params.len(), "parameters", apply.pos)?;
        check_arity(&apply.name, want_qubits, apply.args.len(), "qubit arguments", apply.pos)
    }

    /// Resolves one top-level argument to the flat qubit indices it
    /// denotes: one index for `reg[i]`, all of them for a bare `reg`.
    fn resolve_argument(&self, arg: &Argument) -> Result<(usize, usize), QasmError> {
        let entry = self.qregs.get(&arg.register).ok_or_else(|| {
            QasmError::new(QasmErrorKind::UnknownRegister(arg.register.clone()), arg.pos)
        })?;
        match arg.index {
            Some(index) => {
                if index >= entry.size {
                    return Err(QasmError::new(
                        QasmErrorKind::IndexOutOfRange {
                            register: arg.register.clone(),
                            index,
                            size: entry.size,
                        },
                        arg.pos,
                    ));
                }
                Ok((entry.offset + index, 1))
            }
            None => Ok((entry.offset, entry.size)),
        }
    }

    /// Applies one top-level gate statement, expanding QASM's register
    /// broadcasting: whole-register arguments iterate element-wise (all
    /// must have equal length), indexed arguments stay fixed.
    fn apply_broadcast(&mut self, apply: &GateApply) -> Result<(), QasmError> {
        let mut resolved = Vec::with_capacity(apply.args.len());
        let mut broadcast: Option<usize> = None;
        for arg in &apply.args {
            let (base, len) = self.resolve_argument(arg)?;
            let is_register = arg.index.is_none();
            if is_register {
                match broadcast {
                    None => broadcast = Some(len),
                    Some(existing) if existing == len => {}
                    Some(_) => {
                        return Err(QasmError::new(
                            QasmErrorKind::BroadcastMismatch { gate: apply.name.clone() },
                            arg.pos,
                        ));
                    }
                }
            }
            resolved.push((base, is_register));
        }
        let params: Vec<f64> =
            apply.params.iter().map(|p| eval_expr(p, None)).collect::<Result<_, _>>()?;
        let repeats = broadcast.unwrap_or(1);
        for i in 0..repeats {
            let qubits: Vec<usize> = resolved
                .iter()
                .map(|&(base, is_register)| if is_register { base + i } else { base })
                .collect();
            self.apply_gate(&apply.name, &params, &qubits, apply.pos)?;
        }
        Ok(())
    }

    /// Applies a gate by name to concrete flat qubit indices: built-in
    /// first, then user-defined (inlined recursively), else unknown.
    fn apply_gate(
        &mut self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        pos: SourcePos,
    ) -> Result<(), QasmError> {
        // A multi-qubit application must name distinct qubits — checked
        // here uniformly, so user-defined gates are covered too (their
        // bodies may never emit a multi-qubit native that would trip the
        // circuit-level check).
        if qubits.len() >= 2 {
            let mut seen = qubits.to_vec();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(QasmError::new(QasmErrorKind::DuplicateQubit(name.to_string()), pos));
            }
        }
        if let Some((want_params, want_qubits)) = native_signature(name) {
            check_arity(name, want_params, params.len(), "parameters", pos)?;
            check_arity(name, want_qubits, qubits.len(), "qubit arguments", pos)?;
            return self.emit_native(name, params, qubits, pos);
        }
        let def = match self.gates.get(name) {
            Some(def) => def.clone(),
            None => return Err(QasmError::new(QasmErrorKind::UnknownGate(name.to_string()), pos)),
        };
        check_arity(name, def.params.len(), params.len(), "parameters", pos)?;
        check_arity(name, def.qubits.len(), qubits.len(), "qubit arguments", pos)?;
        self.report.gates_inlined += 1;
        let param_env: HashMap<String, f64> =
            def.params.iter().cloned().zip(params.iter().copied()).collect();
        let qubit_env: HashMap<&str, usize> =
            def.qubits.iter().map(String::as_str).zip(qubits.iter().copied()).collect();
        for body in &def.body {
            let BodyStatement::Apply(inner) = body else { continue };
            let inner_params: Vec<f64> = inner
                .params
                .iter()
                .map(|p| eval_expr(p, Some(&param_env)))
                .collect::<Result<_, _>>()?;
            let inner_qubits: Vec<usize> = inner
                .args
                .iter()
                .map(|arg| {
                    qubit_env.get(arg.register.as_str()).copied().ok_or_else(|| {
                        QasmError::new(
                            QasmErrorKind::UnknownRegister(arg.register.clone()),
                            arg.pos,
                        )
                    })
                })
                .collect::<Result<_, _>>()?;
            self.apply_gate(&inner.name, &inner_params, &inner_qubits, inner.pos)?;
        }
        Ok(())
    }

    fn push(&mut self, gate: Gate, pos: SourcePos) -> Result<(), QasmError> {
        self.circuit.try_push(gate).map_err(|e| match e {
            CircuitError::DuplicateOperand { .. } => {
                QasmError::new(QasmErrorKind::DuplicateQubit("<builtin>".into()), pos)
            }
            CircuitError::QubitOutOfRange { qubit, num_qubits } => QasmError::new(
                QasmErrorKind::IndexOutOfRange {
                    register: "<flat>".into(),
                    index: qubit as usize,
                    size: num_qubits,
                },
                pos,
            ),
            CircuitError::InvalidSize { .. } => {
                QasmError::new(QasmErrorKind::BadExpression("invalid circuit size"), pos)
            }
        })
    }

    /// `U(θ,φ,λ) = Rz(φ)·Ry(θ)·Rz(λ)` up to global phase: lowered as the
    /// gate sequence Rz(λ), Ry(θ), Rz(φ) with exact-zero angles skipped.
    fn lower_u(
        &mut self,
        theta: f64,
        phi: f64,
        lambda: f64,
        q: Qubit,
        pos: SourcePos,
    ) -> Result<(), QasmError> {
        if lambda != 0.0 {
            self.push(Gate::Rz(q, lambda), pos)?;
        }
        if theta != 0.0 {
            self.push(Gate::Ry(q, theta), pos)?;
        }
        if phi != 0.0 {
            self.push(Gate::Rz(q, phi), pos)?;
        }
        Ok(())
    }

    /// Emits a built-in gate (arity already checked). Gates with no IR
    /// equivalent expand to their standard decompositions.
    fn emit_native(
        &mut self,
        name: &str,
        p: &[f64],
        q: &[usize],
        pos: SourcePos,
    ) -> Result<(), QasmError> {
        let qb = |i: usize| Qubit(q[i] as u32);
        // Distinct operands were already enforced in `apply_gate`, so a
        // duplicate can never surface from inside a decomposition.
        match name {
            "U" | "u3" => self.lower_u(p[0], p[1], p[2], qb(0), pos),
            "u2" => self.lower_u(PI / 2.0, p[0], p[1], qb(0), pos),
            "u1" | "p" => self.push(Gate::Rz(qb(0), p[0]), pos),
            "id" => Ok(()),
            "x" => self.push(Gate::X(qb(0)), pos),
            "y" => self.push(Gate::Ry(qb(0), PI), pos),
            "z" => self.push(Gate::Rz(qb(0), PI), pos),
            "h" => self.push(Gate::H(qb(0)), pos),
            "s" => self.push(Gate::Rz(qb(0), PI / 2.0), pos),
            "sdg" => self.push(Gate::Rz(qb(0), -PI / 2.0), pos),
            "t" => self.push(Gate::Rz(qb(0), PI / 4.0), pos),
            "tdg" => self.push(Gate::Rz(qb(0), -PI / 4.0), pos),
            "sx" => self.push(Gate::Rx(qb(0), PI / 2.0), pos),
            "sxdg" => self.push(Gate::Rx(qb(0), -PI / 2.0), pos),
            "rx" => self.push(Gate::Rx(qb(0), p[0]), pos),
            "ry" => self.push(Gate::Ry(qb(0), p[0]), pos),
            "rz" => self.push(Gate::Rz(qb(0), p[0]), pos),
            "CX" | "cx" => self.push(Gate::Cx(qb(0), qb(1)), pos),
            "cz" => self.push(Gate::Cz(qb(0), qb(1)), pos),
            "cp" | "cu1" => self.push(Gate::Cp(qb(0), qb(1), p[0]), pos),
            "swap" => self.push(Gate::Swap(qb(0), qb(1)), pos),
            "ms" => self.push(Gate::Ms(qb(0), qb(1)), pos),
            "rxx" => self.push(Gate::Rxx(qb(0), qb(1), p[0]), pos),
            "ryy" => self.push(Gate::Ryy(qb(0), qb(1), p[0]), pos),
            "rzz" => self.push(Gate::Rzz(qb(0), qb(1), p[0]), pos),
            "cy" => {
                self.push(Gate::Rz(qb(1), -PI / 2.0), pos)?;
                self.push(Gate::Cx(qb(0), qb(1)), pos)?;
                self.push(Gate::Rz(qb(1), PI / 2.0), pos)
            }
            "ch" => {
                // qelib1's decomposition, with s/t lowered to rz.
                let (a, b) = (qb(0), qb(1));
                self.push(Gate::H(b), pos)?;
                self.push(Gate::Rz(b, -PI / 2.0), pos)?;
                self.push(Gate::Cx(a, b), pos)?;
                self.push(Gate::H(b), pos)?;
                self.push(Gate::Rz(b, PI / 4.0), pos)?;
                self.push(Gate::Cx(a, b), pos)?;
                self.push(Gate::Rz(b, PI / 4.0), pos)?;
                self.push(Gate::H(b), pos)?;
                self.push(Gate::Rz(b, PI / 2.0), pos)?;
                self.push(Gate::X(b), pos)?;
                self.push(Gate::Rz(a, PI / 2.0), pos)
            }
            "crx" => {
                let (a, b) = (qb(0), qb(1));
                self.push(Gate::Rz(b, PI / 2.0), pos)?;
                self.push(Gate::Cx(a, b), pos)?;
                self.lower_u(-p[0] / 2.0, 0.0, 0.0, b, pos)?;
                self.push(Gate::Cx(a, b), pos)?;
                self.lower_u(p[0] / 2.0, -PI / 2.0, 0.0, b, pos)
            }
            "cry" => {
                let (a, b) = (qb(0), qb(1));
                self.push(Gate::Ry(b, p[0] / 2.0), pos)?;
                self.push(Gate::Cx(a, b), pos)?;
                self.push(Gate::Ry(b, -p[0] / 2.0), pos)?;
                self.push(Gate::Cx(a, b), pos)
            }
            "crz" => {
                let (a, b) = (qb(0), qb(1));
                self.push(Gate::Rz(b, p[0] / 2.0), pos)?;
                self.push(Gate::Cx(a, b), pos)?;
                self.push(Gate::Rz(b, -p[0] / 2.0), pos)?;
                self.push(Gate::Cx(a, b), pos)
            }
            "cu3" => {
                let (c, t) = (qb(0), qb(1));
                let (theta, phi, lambda) = (p[0], p[1], p[2]);
                self.push(Gate::Rz(c, (lambda + phi) / 2.0), pos)?;
                self.push(Gate::Rz(t, (lambda - phi) / 2.0), pos)?;
                self.push(Gate::Cx(c, t), pos)?;
                self.lower_u(-theta / 2.0, 0.0, -(phi + lambda) / 2.0, t, pos)?;
                self.push(Gate::Cx(c, t), pos)?;
                self.lower_u(theta / 2.0, phi, 0.0, t, pos)
            }
            "ccx" => {
                // The textbook 6-CX Toffoli network, t/tdg as rz(±π/4).
                let (a, b, c) = (qb(0), qb(1), qb(2));
                self.push(Gate::H(c), pos)?;
                self.push(Gate::Cx(b, c), pos)?;
                self.push(Gate::Rz(c, -PI / 4.0), pos)?;
                self.push(Gate::Cx(a, c), pos)?;
                self.push(Gate::Rz(c, PI / 4.0), pos)?;
                self.push(Gate::Cx(b, c), pos)?;
                self.push(Gate::Rz(c, -PI / 4.0), pos)?;
                self.push(Gate::Cx(a, c), pos)?;
                self.push(Gate::Rz(b, PI / 4.0), pos)?;
                self.push(Gate::Rz(c, PI / 4.0), pos)?;
                self.push(Gate::H(c), pos)?;
                self.push(Gate::Cx(a, b), pos)?;
                self.push(Gate::Rz(a, PI / 4.0), pos)?;
                self.push(Gate::Rz(b, -PI / 4.0), pos)?;
                self.push(Gate::Cx(a, b), pos)
            }
            "cswap" => {
                let (a, b, c) = (q[0], q[1], q[2]);
                self.push(Gate::Cx(Qubit(c as u32), Qubit(b as u32)), pos)?;
                self.emit_native("ccx", &[], &[a, b, c], pos)?;
                self.push(Gate::Cx(Qubit(c as u32), Qubit(b as u32)), pos)
            }
            _ => unreachable!("native_signature and emit_native must list the same gates"),
        }
    }
}

fn check_arity(
    gate: &str,
    expected: usize,
    got: usize,
    what: &'static str,
    pos: SourcePos,
) -> Result<(), QasmError> {
    if expected != got {
        return Err(QasmError::new(
            QasmErrorKind::ArityMismatch { gate: gate.to_string(), expected, got, what },
            pos,
        ));
    }
    Ok(())
}

/// `(parameter count, qubit count)` of a built-in gate, `None` when the
/// name is not built in. Must stay in sync with `emit_native`.
fn native_signature(name: &str) -> Option<(usize, usize)> {
    Some(match name {
        "U" | "u3" | "cu3" => (3, if name == "cu3" { 2 } else { 1 }),
        "u2" => (2, 1),
        "u1" | "p" | "rx" | "ry" | "rz" => (1, 1),
        "id" | "x" | "y" | "z" | "h" | "s" | "sdg" | "t" | "tdg" | "sx" | "sxdg" => (0, 1),
        "CX" | "cx" | "cz" | "cy" | "ch" | "swap" | "ms" => (0, 2),
        "cp" | "cu1" | "crx" | "cry" | "crz" | "rxx" | "ryy" | "rzz" => (1, 2),
        "ccx" | "cswap" => (0, 3),
        _ => return None,
    })
}

/// Validates that every `Param` reference in `expr` names a parameter in
/// `scope` (used at definition time, before values exist).
fn validate_params_in_scope(expr: &Expr, scope: &[String]) -> Result<(), QasmError> {
    match expr {
        Expr::Number(_) | Expr::Pi => Ok(()),
        Expr::Param(name, pos) => {
            if scope.iter().any(|p| p == name) {
                Ok(())
            } else {
                Err(QasmError::new(QasmErrorKind::UnknownParameter(name.clone()), *pos))
            }
        }
        Expr::Neg(inner) => validate_params_in_scope(inner, scope),
        Expr::Binary { lhs, rhs, .. } => {
            validate_params_in_scope(lhs, scope)?;
            validate_params_in_scope(rhs, scope)
        }
        Expr::Call { arg, .. } => validate_params_in_scope(arg, scope),
    }
}

/// Evaluates a constant parameter expression. `params` carries the
/// enclosing gate definition's parameter bindings; top-level expressions
/// have none (`None`).
fn eval_expr(expr: &Expr, params: Option<&HashMap<String, f64>>) -> Result<f64, QasmError> {
    Ok(match expr {
        Expr::Number(v) => *v,
        Expr::Pi => PI,
        Expr::Param(name, pos) => params
            .and_then(|p| p.get(name).copied())
            .ok_or_else(|| QasmError::new(QasmErrorKind::UnknownParameter(name.clone()), *pos))?,
        Expr::Neg(inner) => -eval_expr(inner, params)?,
        Expr::Binary { op, lhs, rhs, pos } => {
            let (a, b) = (eval_expr(lhs, params)?, eval_expr(rhs, params)?);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(QasmError::new(
                            QasmErrorKind::BadExpression("division by zero"),
                            *pos,
                        ));
                    }
                    a / b
                }
                BinOp::Pow => a.powf(b),
            }
        }
        Expr::Call { func, arg } => func.apply(eval_expr(arg, params)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn lower_source(source: &str) -> Result<ParseOutput, QasmError> {
        lower(&parse_program(source).expect("parses"))
    }

    #[test]
    fn registers_flatten_in_declaration_order() {
        let out =
            lower_source("OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\ncx a[1], b[2];").expect("lowers");
        assert_eq!(out.circuit.num_qubits(), 5);
        assert_eq!(out.circuit.gates(), &[Gate::Cx(Qubit(1), Qubit(4))]);
    }

    #[test]
    fn broadcasting_applies_element_wise() {
        let out =
            lower_source("OPENQASM 2.0;\nqreg q[3];\nqreg a[3];\nh q;\ncx q, a;\ncx q, a[0];")
                .expect("lowers");
        // 3 h + 3 pairwise cx + 3 cx onto the fixed a[0]... but the last
        // broadcast includes cx q[3+0]? No: cx q, a[0] repeats q over the
        // register and pins a[0].
        let gates = out.circuit.gates();
        assert_eq!(gates.len(), 9);
        assert_eq!(gates[3], Gate::Cx(Qubit(0), Qubit(3)));
        assert_eq!(gates[5], Gate::Cx(Qubit(2), Qubit(5)));
        assert_eq!(gates[6], Gate::Cx(Qubit(0), Qubit(3)));
        assert_eq!(gates[8], Gate::Cx(Qubit(2), Qubit(3)));
    }

    #[test]
    fn broadcast_length_mismatch_is_an_error() {
        let err = lower_source("OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\ncx a, b;").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::BroadcastMismatch { .. }));
    }

    #[test]
    fn user_gates_inline_recursively_with_parameters() {
        let out = lower_source(
            "OPENQASM 2.0;\nqreg q[2];\n\
             gate inner(theta) a { rz(theta/2) a; }\n\
             gate outer(theta) a, b { inner(theta) a; cx a, b; inner(-theta) b; }\n\
             outer(pi) q[0], q[1];",
        )
        .expect("lowers");
        assert_eq!(
            out.circuit.gates(),
            &[
                Gate::Rz(Qubit(0), PI / 2.0),
                Gate::Cx(Qubit(0), Qubit(1)),
                Gate::Rz(Qubit(1), -PI / 2.0),
            ]
        );
        assert_eq!(out.report.gates_inlined, 3);
    }

    #[test]
    fn stdlib_gates_lower_to_native_or_decomposed_forms() {
        let out = lower_source(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n\
             s q[0]; tdg q[1]; y q[2]; u2(0, pi) q[0]; ccx q[0], q[1], q[2];",
        )
        .expect("lowers");
        let gates = out.circuit.gates();
        assert_eq!(gates[0], Gate::Rz(Qubit(0), PI / 2.0));
        assert_eq!(gates[1], Gate::Rz(Qubit(1), -PI / 4.0));
        assert_eq!(gates[2], Gate::Ry(Qubit(2), PI));
        // u2(0, π) = Rz(π)·Ry(π/2); the zero φ rotation is skipped.
        assert_eq!(gates[3], Gate::Rz(Qubit(0), PI));
        assert_eq!(gates[4], Gate::Ry(Qubit(0), PI / 2.0));
        // ccx expands to the 15-gate Toffoli network.
        assert_eq!(gates.len(), 5 + 15);
        assert_eq!(out.circuit.two_qubit_gate_count(), 6);
    }

    #[test]
    fn redefining_a_builtin_keeps_the_native_lowering() {
        // Circuit dumps often inline qelib1's own definitions; the native
        // table must win so round-trips stay exact.
        let out = lower_source(
            "OPENQASM 2.0;\nqreg q[2];\n\
             gate h a { u2(0, pi) a; }\nh q[0];",
        )
        .expect("lowers");
        assert_eq!(out.circuit.gates(), &[Gate::H(Qubit(0))]);
        assert_eq!(out.report.gates_inlined, 0);
    }

    #[test]
    fn measure_reset_and_if_strip_with_counters() {
        let out = lower_source(
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[0];\n\
             reset q[1];\nif (c == 1) x q[1];\nbarrier q;",
        )
        .expect("lowers");
        assert_eq!(out.circuit.len(), 1);
        assert_eq!(out.report.measurements_stripped, 1);
        assert_eq!(out.report.resets_stripped, 1);
        assert_eq!(out.report.conditionals_stripped, 1);
        assert_eq!(out.report.barriers, 1);
        assert!(out.report.stripped_anything());
    }

    #[test]
    fn semantic_errors_carry_positions() {
        let err = lower_source("OPENQASM 2.0;\nqreg q[2];\nh q[5];").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::IndexOutOfRange { index: 5, size: 2, .. }));
        assert_eq!(err.pos.line, 3);

        let err = lower_source("OPENQASM 2.0;\nqreg q[2];\nnope q[0];").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::UnknownGate(_)));

        let err = lower_source("OPENQASM 2.0;\nqreg q[2];\ncx q[0];").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::ArityMismatch { expected: 2, got: 1, .. }));

        let err = lower_source("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::DuplicateQubit(_)));

        let err = lower_source("OPENQASM 2.0;\nqreg q[1];\nrz(1/0) q[0];").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::BadExpression(_)));

        let err = lower_source("OPENQASM 2.0;\nqreg q[1];\nqreg q[2];").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::Redefinition(_)));

        let err = lower_source("OPENQASM 2.0;\nqreg q[1];\ngate f a { f a; }").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::RecursiveGate(_)));

        let err = lower_source("OPENQASM 2.0;\nqreg q[1];\ngate f(x) a { rz(yy) a; }").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::UnknownParameter(_)));
    }

    #[test]
    fn conditional_qops_parse_and_validate_before_stripping() {
        // `if (c==n) measure/reset` are legal qops and strip cleanly.
        let out = lower_source(
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n\
             if (c == 1) measure q[0] -> c[0];\nif (c == 2) reset q[1];\nif (c == 3) x q[0];",
        )
        .expect("lowers");
        assert!(out.circuit.is_empty());
        assert_eq!(out.report.conditionals_stripped, 3);
        assert_eq!(out.report.measurements_stripped, 0, "counted as conditionals");

        // A typo inside `if` is still a typo: unknown gate, bad arity,
        // unknown register and unknown guard creg all error.
        let err =
            lower_source("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c == 1) frobnicate q[0];")
                .unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::UnknownGate(_)));
        let err = lower_source("OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\nif (c == 1) cx q[0];")
            .unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::ArityMismatch { .. }));
        let err = lower_source("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c == 1) x nosuch[0];")
            .unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::UnknownRegister(_)));
        let err = lower_source("OPENQASM 2.0;\nqreg q[1];\nif (nosuch == 1) x q[0];").unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::UnknownRegister(_)));
    }

    #[test]
    fn duplicate_qubits_error_for_user_defined_gates_too() {
        let err = lower_source(
            "OPENQASM 2.0;\nqreg q[2];\n\
             gate pp a, b { rz(1) a; rz(2) b; }\npp q[0], q[0];",
        )
        .unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::DuplicateQubit(name) if name == "pp"));
    }

    #[test]
    fn expressions_evaluate_with_precedence_and_functions() {
        let out = lower_source(
            "OPENQASM 2.0;\nqreg q[1];\nrz(-pi/4 + 2^3 * 0.125) q[0];\nrz(cos(0)) q[0];",
        )
        .expect("lowers");
        let Gate::Rz(_, angle) = out.circuit.gates()[0] else { panic!("rz") };
        assert!((angle - (-PI / 4.0 + 1.0)).abs() < 1e-12);
        let Gate::Rz(_, angle) = out.circuit.gates()[1] else { panic!("rz") };
        assert_eq!(angle, 1.0);
    }

    #[test]
    fn opaque_native_gates_lower_and_unknown_opaques_error() {
        let out = lower_source("OPENQASM 2.0;\nqreg q[2];\nopaque ms a, b;\nms q[0], q[1];")
            .expect("lowers");
        assert_eq!(out.circuit.gates(), &[Gate::Ms(Qubit(0), Qubit(1))]);

        let err =
            lower_source("OPENQASM 2.0;\nqreg q[2];\nopaque mystery a, b;\nmystery q[0], q[1];")
                .unwrap_err();
        assert!(matches!(err.kind, QasmErrorKind::UnknownGate(_)));
    }
}
