//! Parse and lowering errors, with precise source positions.

use std::error::Error;
use std::fmt;

/// A 1-based position in the QASM source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourcePos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub col: usize,
}

impl SourcePos {
    /// Position `line:col` (both 1-based).
    pub fn new(line: usize, col: usize) -> Self {
        SourcePos { line, col }
    }
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// What went wrong while lexing, parsing or lowering a QASM program.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmErrorKind {
    /// A character the lexer cannot start a token with.
    UnexpectedChar(char),
    /// A string literal or block comment ran to end-of-file.
    UnterminatedToken(&'static str),
    /// A numeric literal that does not parse as a number.
    MalformedNumber(String),
    /// The parser expected one construct but found another.
    Expected {
        /// What the grammar required at this point.
        expected: &'static str,
        /// What was actually found (a token description).
        found: String,
    },
    /// The mandatory `OPENQASM 2.0;` header is missing or has the wrong
    /// version.
    BadHeader(String),
    /// An `include` of anything other than `"qelib1.inc"` (the front-end
    /// is file-system-free; the standard library is built in).
    UnsupportedInclude(String),
    /// A register (or gate) name declared twice.
    Redefinition(String),
    /// A name used where a declared quantum register was required.
    UnknownRegister(String),
    /// A gate application names a gate that is neither built in nor
    /// user-defined.
    UnknownGate(String),
    /// A register index past the end of the register.
    IndexOutOfRange {
        /// The register name.
        register: String,
        /// The offending index.
        index: usize,
        /// The register's declared size.
        size: usize,
    },
    /// A gate was applied with the wrong number of qubit arguments or
    /// classical parameters.
    ArityMismatch {
        /// The gate name.
        gate: String,
        /// What the definition requires.
        expected: usize,
        /// What the application supplied.
        got: usize,
        /// `"qubit arguments"` or `"parameters"`.
        what: &'static str,
    },
    /// A gate application names the same qubit twice.
    DuplicateQubit(String),
    /// Register arguments of one broadcast application have mismatched
    /// lengths.
    BroadcastMismatch {
        /// The gate name.
        gate: String,
    },
    /// An expression used an identifier that is not a gate parameter (or
    /// `pi`).
    UnknownParameter(String),
    /// Division by zero (or another domain error) inside a constant
    /// parameter expression.
    BadExpression(&'static str),
    /// User `gate` definitions recurse (directly or mutually); QASM 2.0
    /// requires bodies to reference previously defined gates only.
    RecursiveGate(String),
    /// A register was declared with size zero.
    EmptyRegister(String),
}

/// An error in a QASM program, carrying the [`SourcePos`] it was detected
/// at.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// What went wrong.
    pub kind: QasmErrorKind,
    /// Where in the source it was detected (1-based line and column).
    pub pos: SourcePos,
}

impl QasmError {
    /// An error of `kind` at `pos`.
    pub fn new(kind: QasmErrorKind, pos: SourcePos) -> Self {
        QasmError { kind, pos }
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.pos)?;
        match &self.kind {
            QasmErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            QasmErrorKind::UnterminatedToken(what) => write!(f, "unterminated {what}"),
            QasmErrorKind::MalformedNumber(text) => write!(f, "malformed number '{text}'"),
            QasmErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            QasmErrorKind::BadHeader(found) => {
                write!(f, "expected 'OPENQASM 2.0;' header, found '{found}'")
            }
            QasmErrorKind::UnsupportedInclude(file) => write!(
                f,
                "unsupported include '{file}' (only the built-in \"qelib1.inc\" is available)"
            ),
            QasmErrorKind::Redefinition(name) => write!(f, "'{name}' is already defined"),
            QasmErrorKind::UnknownRegister(name) => {
                write!(f, "unknown quantum register '{name}'")
            }
            QasmErrorKind::UnknownGate(name) => write!(f, "unknown gate '{name}'"),
            QasmErrorKind::IndexOutOfRange { register, index, size } => {
                write!(f, "index {index} out of range for {register}[{size}]")
            }
            QasmErrorKind::ArityMismatch { gate, expected, got, what } => {
                write!(f, "gate '{gate}' takes {expected} {what}, got {got}")
            }
            QasmErrorKind::DuplicateQubit(gate) => {
                write!(f, "gate '{gate}' applied to the same qubit twice")
            }
            QasmErrorKind::BroadcastMismatch { gate } => {
                write!(f, "registers broadcast through gate '{gate}' have different lengths")
            }
            QasmErrorKind::UnknownParameter(name) => {
                write!(f, "'{name}' is not a parameter in scope (and not 'pi')")
            }
            QasmErrorKind::BadExpression(what) => write!(f, "invalid expression: {what}"),
            QasmErrorKind::RecursiveGate(name) => {
                write!(f, "gate '{name}' is defined recursively")
            }
            QasmErrorKind::EmptyRegister(name) => {
                write!(f, "register '{name}' declared with size 0")
            }
        }
    }
}

impl Error for QasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_detail() {
        let e = QasmError::new(
            QasmErrorKind::Expected { expected: "';'", found: "identifier 'q'".into() },
            SourcePos::new(3, 14),
        );
        assert_eq!(e.to_string(), "3:14: expected ';', found identifier 'q'");
        let e = QasmError::new(
            QasmErrorKind::IndexOutOfRange { register: "q".into(), index: 9, size: 4 },
            SourcePos::new(1, 1),
        );
        assert!(e.to_string().contains("index 9 out of range for q[4]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QasmError>();
    }
}
