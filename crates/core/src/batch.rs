//! Parallel fan-out for batch compilation.
//!
//! Batch compilation over one shared [`ssync_arch::Device`] is
//! embarrassingly parallel: every circuit compiles independently, reading
//! the same immutable device artifact. This module provides the shared
//! worker-pool primitive — a deterministic, index-preserving parallel map
//! over `std::thread::scope` — plus the worker-count resolution used by
//! [`crate::SSyncCompiler::compile_batch`] and the bench harness.
//!
//! Determinism: results are written back by item index, so the output
//! order (and every individual result) is independent of the worker count
//! and of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the batch worker count.
pub const WORKERS_ENV: &str = "SSYNC_BATCH_WORKERS";

/// Resolves the number of batch workers: the `SSYNC_BATCH_WORKERS`
/// environment variable wins when set to a positive integer, then a
/// positive `configured` count (0 means "auto"), then
/// [`std::thread::available_parallelism`].
pub fn resolve_workers(configured: usize) -> usize {
    if let Some(n) = std::env::var(WORKERS_ENV).ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        if n >= 1 {
            return n;
        }
    }
    if configured >= 1 {
        return configured;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Applies `f` to every item, fanning out over `workers` scoped threads,
/// and returns the results **in item order** regardless of worker count.
/// Items are handed out through a shared atomic cursor, so long and short
/// compilations load-balance naturally.
///
/// With one worker (or at most one item) everything runs on the calling
/// thread — no spawn overhead for the degenerate cases.
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread.
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(workers, items, || (), |(), i, item| f(i, item))
}

/// [`parallel_map`] with per-worker state: every worker thread calls
/// `init` exactly once and threads the resulting value through each of its
/// `f` invocations. This is how batch workers carry a reusable
/// [`crate::CompileScratch`] across their share of a batch — the state
/// recycles allocations and must never influence results (determinism is
/// enforced by the batch golden tests, which hold at any worker count).
///
/// # Panics
///
/// Re-raises a panic from `init` or `f` on the calling thread.
pub fn parallel_map_with<T, R, S, I, F>(workers: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        let mut state = init();
        return items.iter().enumerate().map(|(i, item)| f(&mut state, i, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let worker_outputs: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(&mut state, i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in worker_outputs.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("every item is processed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order_for_any_worker_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = parallel_map(workers, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn per_worker_state_is_initialised_once_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        for workers in [1usize, 4] {
            // Each worker counts how many items it processed through its
            // own state; the counts must cover every item exactly once.
            let results = parallel_map_with(
                workers,
                &items,
                || 0usize,
                |seen, i, &x| {
                    *seen += 1;
                    (i, x, *seen)
                },
            );
            assert_eq!(results.len(), items.len(), "workers = {workers}");
            for (slot, &(i, x, seen)) in results.iter().enumerate() {
                assert_eq!(slot, i);
                assert_eq!(i, x);
                assert!(seen >= 1 && seen <= items.len());
            }
        }
    }

    #[test]
    fn resolve_workers_prefers_config_over_auto() {
        if std::env::var(WORKERS_ENV).is_err() {
            // Only meaningful when the process-global override is unset
            // (it deliberately wins over the configured count).
            assert_eq!(resolve_workers(3), 3);
        }
        assert!(resolve_workers(0) >= 1);
    }
}
