//! The *generic swap*: the unified node-interchange operation of Sec. 3.2.
//!
//! A generic swap exchanges the contents of two slot-graph nodes connected
//! by an edge. Depending on what sits at the endpoints it realises:
//!
//! * a **SWAP gate** — both endpoints hold qubits, same trap (rule 2),
//! * an **ion reorder** — one endpoint is a space, same trap, adjacent
//!   slots (rule 4),
//! * a **shuttle** — the endpoints are the facing ports of adjacent traps
//!   and exactly one holds a qubit (rule 3).

use serde::{Deserialize, Serialize};
use ssync_arch::{EdgeKind, Placement, SlotGraph, SlotId};
use std::fmt;

/// The physical realisation of a generic swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GenericSwapKind {
    /// A SWAP gate between two adjacent ions of the same trap.
    SwapGate,
    /// A physical shift of a space node by one position inside a trap.
    Reorder,
    /// A shuttle of an ion across an inter-trap link crossing `junctions`
    /// junctions.
    Shuttle {
        /// Junctions on the link.
        junctions: u32,
    },
}

/// A candidate generic swap: exchange the contents of slots `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenericSwap {
    /// First endpoint.
    pub a: SlotId,
    /// Second endpoint.
    pub b: SlotId,
    /// The physical realisation.
    pub kind: GenericSwapKind,
    /// The edge weight `w(swap)` added to the heuristic score (Eq. 1).
    pub weight: f64,
}

impl fmt::Display for GenericSwap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            GenericSwapKind::SwapGate => "swap-gate",
            GenericSwapKind::Reorder => "reorder",
            GenericSwapKind::Shuttle { .. } => "shuttle",
        };
        write!(f, "{kind} {}<->{} (w={})", self.a, self.b, self.weight)
    }
}

impl GenericSwap {
    /// Classifies the exchange across edge (`a`, `b`) under the current
    /// placement, returning `None` when the exchange is invalid or useless
    /// (both endpoints empty, or an occupied/occupied inter-trap pair).
    pub fn classify(
        graph: &SlotGraph,
        placement: &Placement,
        a: SlotId,
        b: SlotId,
        kind: EdgeKind,
        weight: f64,
    ) -> Option<GenericSwap> {
        let occ_a = placement.occupant(a).is_some();
        let occ_b = placement.occupant(b).is_some();
        match kind {
            EdgeKind::IntraTrap => match (occ_a, occ_b) {
                (true, true) => Some(GenericSwap { a, b, kind: GenericSwapKind::SwapGate, weight }),
                (true, false) | (false, true) => {
                    Some(GenericSwap { a, b, kind: GenericSwapKind::Reorder, weight })
                }
                (false, false) => None,
            },
            EdgeKind::InterTrap { junctions } => {
                // Exactly one endpoint must hold an ion (rule 3) and both
                // must be the facing chain ends, which the graph guarantees.
                debug_assert!(!graph.same_trap(a, b));
                match (occ_a, occ_b) {
                    (true, false) | (false, true) => Some(GenericSwap {
                        a,
                        b,
                        kind: GenericSwapKind::Shuttle { junctions },
                        weight,
                    }),
                    _ => None,
                }
            }
        }
    }

    /// Enumerates every valid generic swap under the current placement.
    pub fn candidates(graph: &SlotGraph, placement: &Placement) -> Vec<GenericSwap> {
        graph
            .edges()
            .iter()
            .filter_map(|e| Self::classify(graph, placement, e.a, e.b, e.kind, e.weight))
            .collect()
    }

    /// The qubits moved by this swap (one for reorders/shuttles, two for
    /// SWAP gates).
    pub fn moved_qubits(&self, placement: &Placement) -> Vec<ssync_circuit::Qubit> {
        [self.a, self.b].iter().filter_map(|&s| placement.occupant(s)).collect()
    }

    /// `true` if this swap is a shuttle.
    pub fn is_shuttle(&self) -> bool {
        matches!(self.kind, GenericSwapKind::Shuttle { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::{QccdTopology, WeightConfig};
    use ssync_circuit::Qubit;

    /// Two traps of capacity 3 in a line; qubits 0,1 in trap 0, qubit 2 in trap 1.
    fn setup() -> (SlotGraph, Placement) {
        let topo = QccdTopology::linear(2, 3);
        let graph = SlotGraph::new(topo.clone(), WeightConfig::default());
        let mut p = Placement::new(&topo, 3);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(1));
        p.place(Qubit(2), SlotId(3));
        (graph, p)
    }

    #[test]
    fn candidates_cover_all_three_kinds() {
        let (graph, p) = setup();
        let cands = GenericSwap::candidates(&graph, &p);
        assert!(cands.iter().any(|c| c.kind == GenericSwapKind::SwapGate));
        assert!(cands.iter().any(|c| c.kind == GenericSwapKind::Reorder));
        assert!(cands.iter().any(|c| c.is_shuttle()));
    }

    #[test]
    fn empty_empty_edges_are_not_candidates() {
        let topo = QccdTopology::linear(2, 3);
        let graph = SlotGraph::new(topo.clone(), WeightConfig::default());
        let p = Placement::new(&topo, 1);
        assert!(GenericSwap::candidates(&graph, &p).is_empty());
    }

    #[test]
    fn inter_trap_edge_with_two_ions_is_invalid() {
        let topo = QccdTopology::linear(2, 2);
        let graph = SlotGraph::new(topo.clone(), WeightConfig::default());
        let mut p = Placement::new(&topo, 2);
        // Port slots of both traps occupied: slot 1 (right end of trap 0)
        // and slot 2 (left end of trap 1).
        p.place(Qubit(0), SlotId(1));
        p.place(Qubit(1), SlotId(2));
        let cands = GenericSwap::candidates(&graph, &p);
        assert!(cands.iter().all(|c| !c.is_shuttle()));
    }

    #[test]
    fn shuttle_candidate_carries_junction_count() {
        let topo = QccdTopology::grid(2, 2, 2);
        let graph = SlotGraph::new(topo.clone(), WeightConfig::default());
        let mut p = Placement::new(&topo, 1);
        // Put the qubit on trap 0's right end, which is a port slot.
        p.place(Qubit(0), SlotId(1));
        let cands = GenericSwap::candidates(&graph, &p);
        let shuttle = cands.iter().find(|c| c.is_shuttle()).unwrap();
        assert_eq!(shuttle.kind, GenericSwapKind::Shuttle { junctions: 1 });
        assert_eq!(shuttle.weight, 2.0);
    }

    #[test]
    fn moved_qubits_reports_occupants() {
        let (graph, p) = setup();
        let cands = GenericSwap::candidates(&graph, &p);
        let swap = cands.iter().find(|c| c.kind == GenericSwapKind::SwapGate).unwrap();
        let mut moved = swap.moved_qubits(&p);
        moved.sort();
        assert_eq!(moved, vec![Qubit(0), Qubit(1)]);
        let _ = graph; // silence unused in some cfgs
    }

    #[test]
    fn display_names_the_kind() {
        let (graph, p) = setup();
        let cands = GenericSwap::candidates(&graph, &p);
        assert!(cands.iter().any(|c| c.to_string().contains("swap-gate")));
    }
}
