//! Data-independent swap schedules that realise arbitrary permutations.
//!
//! A *swap schedule* is a fixed comparator sequence over `n` chain
//! positions. Running a permutation through the sequence as compare-
//! exchanges (swap iff out of order) sorts it; replaying exactly the
//! comparators that fired on the physical ion chain realises the
//! permutation wholesale. Because the comparator sequence depends only on
//! `n` — never on the permutation — the schedule can be generated once,
//! bounded analytically, and audited by property tests.
//!
//! Two implementations are provided:
//!
//! * [`BubbleSort`] — the n(n−1)/2 adjacent-transposition network. Its
//!   selected-swap count equals the permutation's inversion count exactly,
//!   which makes it the *oracle*: no adjacent-swap realisation can do
//!   better, so every other schedule is validated against it.
//! * [`RecursiveSplitTwo`] — Batcher's odd-even merge network, built by
//!   recursively splitting the chain in two, sorting the halves and
//!   merging. Its comparator count is Θ(n·log²n) ⊂ O(n^1.6), strictly
//!   below bubble sort's quadratic schedule from n = 8 up. Comparators may
//!   span non-adjacent positions; on hardware these are long-range
//!   exchanges priced by ion distance (see `crates/sim`).

use serde::{Deserialize, Serialize};

/// A data-independent comparator schedule realising permutations on a
/// linear ion chain.
///
/// Implementors only supply the comparator sequence; the compare-exchange
/// replay is shared. The contract, pinned by the permutation-routing
/// proptest battery (`tests/tests/perm_route_props.rs`):
///
/// * applying the *selected* swaps of
///   [`SwapSchedule::permutation_to_swap_schedule`] to the objects of the
///   input permutation sorts it (every permutation composes to the
///   identity target);
/// * the sequence for a given `n` is deterministic — two calls yield the
///   same comparators in the same order.
pub trait SwapSchedule {
    /// The fixed comparator sequence for `n` chain positions, as `(i, j)`
    /// pairs with `i < j < n`. The sequence must sort any permutation when
    /// run as compare-exchanges.
    fn swap_sequence(n: usize) -> Vec<(usize, usize)>;

    /// Runs `permutation` through the comparator sequence, sorting it in
    /// place. Returns the full schedule annotated with selection: the
    /// entry `(true, i, j)` means the comparator fired (positions `i` and
    /// `j` must physically swap); `(false, i, j)` means it was a no-op.
    ///
    /// `permutation[i]` is the target rank of the object currently at
    /// rank `i`; applying the selected swaps in order moves every object
    /// to its target rank.
    fn permutation_to_swap_schedule(permutation: &mut [usize]) -> Vec<(bool, usize, usize)> {
        Self::swap_sequence(permutation.len())
            .into_iter()
            .map(|(i, j)| {
                if permutation[i] > permutation[j] {
                    permutation.swap(i, j);
                    (true, i, j)
                } else {
                    (false, i, j)
                }
            })
            .collect()
    }
}

/// The adjacent-transposition bubble network: n(n−1)/2 comparators, and
/// the selected-swap count equals the inversion count of the input
/// permutation exactly — the reference oracle for every other schedule.
#[derive(Debug, Clone, Copy)]
pub enum BubbleSort {}

impl SwapSchedule for BubbleSort {
    fn swap_sequence(n: usize) -> Vec<(usize, usize)> {
        let mut seq = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for pass in (1..n).rev() {
            for j in 0..pass {
                seq.push((j, j + 1));
            }
        }
        seq
    }
}

/// Batcher odd-even merge network: recursively split the chain in two,
/// sort both halves, merge with the odd-even comparator pattern.
///
/// For `n` not a power of two the network is built for the next power of
/// two and filtered to comparators with both endpoints `< n` — sound by
/// the 0-1 principle with virtual `+∞` padding (a comparator touching a
/// padded position never fires, so dropping it changes nothing).
///
/// Comparator count for `n = 2^k` is `(k² − k + 4)·2^(k−2) − 1`, i.e.
/// Θ(n·log²n) ⊂ O(n^1.6): 191 vs bubble's 496 at n = 32, 1471 vs 8128 at
/// n = 128.
#[derive(Debug, Clone, Copy)]
pub enum RecursiveSplitTwo {}

impl RecursiveSplitTwo {
    /// Emits the comparators sorting `[lo, lo + n)` for power-of-two `n`.
    fn sort_range(lo: usize, n: usize, out: &mut Vec<(usize, usize)>) {
        if n > 1 {
            let half = n / 2;
            Self::sort_range(lo, half, out);
            Self::sort_range(lo + half, half, out);
            Self::merge_range(lo, n, 1, out);
        }
    }

    /// Odd-even merge of the two sorted halves of `[lo, lo + n)`,
    /// comparing elements `r` apart.
    fn merge_range(lo: usize, n: usize, r: usize, out: &mut Vec<(usize, usize)>) {
        let step = r * 2;
        if step < n {
            Self::merge_range(lo, n, step, out);
            Self::merge_range(lo + r, n, step, out);
            let mut i = lo + r;
            while i + r < lo + n {
                out.push((i, i + r));
                i += step;
            }
        } else {
            out.push((lo, lo + r));
        }
    }
}

impl SwapSchedule for RecursiveSplitTwo {
    fn swap_sequence(n: usize) -> Vec<(usize, usize)> {
        if n < 2 {
            return Vec::new();
        }
        let padded = n.next_power_of_two();
        let mut seq = Vec::new();
        Self::sort_range(0, padded, &mut seq);
        seq.retain(|&(i, j)| i < n && j < n);
        seq
    }
}

/// Value-level selector between the [`SwapSchedule`] implementations, so a
/// compiler configuration can name one (`CompilerConfig::perm_schedule`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SwapScheduleKind {
    /// [`BubbleSort`]: the quadratic adjacent-swap oracle.
    BubbleSort,
    /// [`RecursiveSplitTwo`]: the sub-quadratic production schedule.
    #[default]
    RecursiveSplitTwo,
}

impl SwapScheduleKind {
    /// Every schedule kind, oracle first.
    pub const ALL: [SwapScheduleKind; 2] =
        [SwapScheduleKind::BubbleSort, SwapScheduleKind::RecursiveSplitTwo];

    /// Stable label used in reports, bench rows and the config hash.
    pub fn label(self) -> &'static str {
        match self {
            SwapScheduleKind::BubbleSort => "bubble-sort",
            SwapScheduleKind::RecursiveSplitTwo => "recursive-split-two",
        }
    }

    /// The comparator sequence of the selected implementation.
    pub fn swap_sequence(self, n: usize) -> Vec<(usize, usize)> {
        match self {
            SwapScheduleKind::BubbleSort => BubbleSort::swap_sequence(n),
            SwapScheduleKind::RecursiveSplitTwo => RecursiveSplitTwo::swap_sequence(n),
        }
    }

    /// Compare-exchange replay of the selected implementation (see
    /// [`SwapSchedule::permutation_to_swap_schedule`]).
    pub fn permutation_to_swap_schedule(
        self,
        permutation: &mut [usize],
    ) -> Vec<(bool, usize, usize)> {
        match self {
            SwapScheduleKind::BubbleSort => BubbleSort::permutation_to_swap_schedule(permutation),
            SwapScheduleKind::RecursiveSplitTwo => {
                RecursiveSplitTwo::permutation_to_swap_schedule(permutation)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic test permutation: a fixed-seed multiplicative shuffle.
    fn shuffled(n: usize, seed: u64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v.swap(i, (state as usize) % (i + 1));
        }
        v
    }

    fn assert_sorts(kind: SwapScheduleKind, perm: Vec<usize>) {
        let n = perm.len();
        let targets = perm.clone();
        let mut scratch = perm;
        // Replay the selected swaps on labelled objects: object `o` starts
        // at rank `o` and must end at rank `targets[o]`.
        let mut objects: Vec<usize> = (0..n).collect();
        for (selected, i, j) in kind.permutation_to_swap_schedule(&mut scratch) {
            if selected {
                objects.swap(i, j);
            }
        }
        let sorted: Vec<usize> = (0..n).collect();
        assert_eq!(scratch, sorted, "{kind:?} failed to sort in place (n = {n})");
        for (rank, &object) in objects.iter().enumerate() {
            assert_eq!(
                targets[object], rank,
                "{kind:?} left object {object} at rank {rank} (n = {n})"
            );
        }
    }

    #[test]
    fn both_kinds_sort_every_small_permutation() {
        // Exhaustive over n ≤ 6 via factorial-number-system unranking.
        for n in 0..=6usize {
            let total: usize = (1..=n.max(1)).product();
            for code in 0..total {
                let mut pool: Vec<usize> = (0..n).collect();
                let mut perm = Vec::with_capacity(n);
                let mut rem = code;
                for radix in (1..=n).rev() {
                    let idx = rem % radix;
                    rem /= radix;
                    perm.push(pool.remove(idx));
                }
                for kind in SwapScheduleKind::ALL {
                    assert_sorts(kind, perm.clone());
                }
            }
        }
    }

    #[test]
    fn both_kinds_sort_shuffles_at_awkward_sizes() {
        // Straddle the power-of-two boundaries where the filtered Batcher
        // construction is most delicate.
        for n in [7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 128] {
            for seed in 0..4 {
                for kind in SwapScheduleKind::ALL {
                    assert_sorts(kind, shuffled(n, seed + 1000 * n as u64));
                }
            }
        }
    }

    #[test]
    fn bubble_schedule_is_exactly_quadratic() {
        for n in [0, 1, 2, 5, 16, 33] {
            assert_eq!(BubbleSort::swap_sequence(n).len(), n * n.saturating_sub(1) / 2);
        }
    }

    #[test]
    fn recursive_split_two_matches_the_closed_form_at_powers_of_two() {
        // |network(2^k)| = (k² − k + 4)·2^(k−2) − 1.
        for k in 2..=7u32 {
            let n = 1usize << k;
            let expected = (k * k - k + 4) as usize * (1usize << (k - 2)) - 1;
            assert_eq!(RecursiveSplitTwo::swap_sequence(n).len(), expected, "n = {n}");
        }
    }

    #[test]
    fn recursive_split_two_is_strictly_smaller_from_thirty_two_up() {
        for n in 32..=160usize {
            let bubble = BubbleSort::swap_sequence(n).len();
            let recursive = RecursiveSplitTwo::swap_sequence(n).len();
            assert!(recursive < bubble, "n = {n}: {recursive} vs {bubble}");
        }
    }

    #[test]
    fn comparator_indices_are_ordered_and_in_bounds() {
        for n in [2usize, 3, 5, 9, 17, 33, 100] {
            for kind in SwapScheduleKind::ALL {
                for (i, j) in kind.swap_sequence(n) {
                    assert!(i < j && j < n, "{kind:?} emitted ({i}, {j}) at n = {n}");
                }
            }
        }
    }

    #[test]
    fn kind_labels_and_default() {
        assert_eq!(SwapScheduleKind::ALL.len(), 2);
        assert_eq!(SwapScheduleKind::default(), SwapScheduleKind::RecursiveSplitTwo);
        assert_eq!(SwapScheduleKind::BubbleSort.label(), "bubble-sort");
        assert_eq!(SwapScheduleKind::RecursiveSplitTwo.label(), "recursive-split-two");
    }
}
