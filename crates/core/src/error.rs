//! Compiler error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the S-SYNC compiler (and the baseline compilers,
/// which share the same preconditions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The device does not have enough slots for the circuit's qubits (at
    /// least one free space must remain for shuttling to be possible).
    DeviceTooSmall {
        /// Program qubits required.
        qubits: usize,
        /// Slots available on the device.
        slots: usize,
    },
    /// The device's traps are not all reachable from each other, so some
    /// two-qubit gates could never be executed.
    DisconnectedTopology,
    /// The scheduler exceeded its iteration budget without completing the
    /// circuit — indicates an internal routing failure.
    SchedulingStalled {
        /// Gates left unexecuted when the budget was exhausted.
        remaining_gates: usize,
    },
    /// An unexpected internal failure (e.g. a compile worker panicked).
    /// Long-lived multi-tenant front-ends report this instead of tearing
    /// the whole process down.
    Internal {
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// The request's deadline passed before a worker picked it up; the
    /// compile was skipped entirely (queue time alone exceeded the
    /// budget, so spending a worker on it would only delay live work).
    DeadlineExceeded {
        /// The deadline the request carried, in microseconds from
        /// submission.
        deadline_us: u64,
    },
    /// The service shed this request at admission instead of queueing it
    /// unboundedly: the backlog exceeded the watermark configured for the
    /// request's priority class (lower-priority classes shed first, so
    /// interactive traffic degrades last), or a per-connection /
    /// per-tenant in-flight cap was hit. The request never entered a
    /// queue; retrying after the hinted delay is expected to succeed once
    /// the backlog drains.
    Overloaded {
        /// Advisory client back-off, in milliseconds. A hint, not a
        /// promise — clients should add jitter and widen it on repeated
        /// rejections (see `ServiceClient::submit_with_backoff`).
        retry_after_ms: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DeviceTooSmall { qubits, slots } => write!(
                f,
                "device too small: {qubits} qubits need at least {} slots, device has {slots}",
                qubits + 1
            ),
            CompileError::DisconnectedTopology => {
                write!(f, "device topology is disconnected; some traps are unreachable")
            }
            CompileError::SchedulingStalled { remaining_gates } => {
                write!(f, "scheduling stalled with {remaining_gates} gates remaining")
            }
            CompileError::Internal { message } => write!(f, "internal compiler error: {message}"),
            CompileError::DeadlineExceeded { deadline_us } => {
                write!(f, "deadline of {deadline_us} µs expired before compilation started")
            }
            CompileError::Overloaded { retry_after_ms } => {
                write!(f, "service overloaded; retry after ~{retry_after_ms} ms")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = CompileError::DeviceTooSmall { qubits: 10, slots: 8 };
        assert!(e.to_string().contains("10 qubits"));
        assert!(CompileError::DisconnectedTopology.to_string().contains("disconnected"));
        assert!(CompileError::SchedulingStalled { remaining_gates: 3 }
            .to_string()
            .contains("3 gates"));
        assert!(CompileError::Overloaded { retry_after_ms: 40 }.to_string().contains("40 ms"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}
