//! Deterministic intra-compile parallelism: the scoring crew behind
//! [`crate::Scheduler`]'s parallel candidate-evaluation path.
//!
//! One circuit-compile is the service pool's unit of work, so a single
//! large compile bounds tail latency no matter how many pool workers sit
//! idle. This module parallelises *inside* a compile: after
//! `prepare_pass` has hoisted the per-iteration state, the candidate set
//! is scored in contiguous index slices by a crew of helper threads, each
//! with its own [`ScoreShard`] readiness memo, and the winners are merged
//! with a total order on `(score, candidate index)` — so the chosen swap
//! is bit-identical at any thread count, which the golden tests against
//! `Scheduler::run_reference` and the `scoring_determinism` corpus tests
//! enforce.
//!
//! Why a *persistent* crew instead of per-pass `std::thread::scope`
//! fan-out: a scheduler iteration costs single-digit microseconds, so a
//! per-pass spawn (tens of microseconds) would erase the win. The crew is
//! spawned once per [`crate::Scheduler::run`] and parked on a condvar
//! between passes; the main thread publishes each pass through two
//! `RwLock`s (placement snapshot + pass data), wakes the crew, scores
//! shard 0 itself, and spin-waits on an atomic countdown for the rest.
//! Phases strictly alternate — the main thread only takes the write locks
//! while every helper is parked, and helpers only take read locks after
//! observing the generation bump — so the locks never contend.
//!
//! The comparator lives here too (`better_candidate`) because
//! determinism at any shard count *requires* it: the historical
//! `score < best - 1e-12` epsilon rule is not transitive, so reducing
//! shard-local winners can disagree with a serial left-to-right scan.
//! A strict total order (`f64::total_cmp`, ties to the lower candidate
//! index) makes the reduction associative — and is NaN-safe, unlike the
//! `partial_cmp(..).unwrap_or(Equal)` it replaces in the fallback loop.

use crate::config::CompilerConfig;
use crate::generic_swap::GenericSwap;
use crate::heuristic::{HeuristicScorer, ScoreShard, ScoringScratch};
use ssync_arch::{DistanceMatrix, Placement, SlotGraph, TrapRouter};
use ssync_circuit::Gate;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, RwLock};

/// Environment variable overriding the per-compile scoring thread count.
pub const SCORE_THREADS_ENV: &str = "SSYNC_SCORE_THREADS";

/// Resolves the number of scoring threads a scheduler run uses: a
/// positive configured count wins (so the service pool can pin a budgeted
/// value per worker), then a positive `SSYNC_SCORE_THREADS`, then 1 —
/// parallel scoring is opt-in, unlike batch fan-out, because every
/// compile in a saturated pool spawning `available_parallelism` helpers
/// would oversubscribe the host by `workers×`.
///
/// Note the precedence deliberately differs from
/// [`crate::batch::resolve_workers`], where the env var wins: a scoring
/// budget computed by the pool must not be overridable per-process, while
/// `scoring_threads = 0` ("auto") lets the env var drive every test and
/// bench uniformly.
pub fn resolve_scoring_threads(configured: usize) -> usize {
    if configured >= 1 {
        return configured;
    }
    std::env::var(SCORE_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Caps a requested scoring-thread count so that `pool_workers`
/// concurrent compiles never oversubscribe the host:
/// `min(requested, max(1, available_parallelism / pool_workers))`.
/// The service pool applies this to every job it executes.
pub fn budget_scoring_threads(requested: usize, pool_workers: usize) -> usize {
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    requested.max(1).min((host / pool_workers.max(1)).max(1))
}

/// Counters describing the candidate-scoring work of one scheduler run.
///
/// Deliberately separate from [`crate::SchedulerStats`]: the golden
/// equivalence tests assert stats equality between `run` and
/// `run_reference`, while these counters legitimately depend on the
/// scoring backend (the reference path reports zeros).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoringTelemetry {
    /// Candidate generic swaps (plus fallback frontier gates) scored.
    pub candidates_scored: u64,
    /// Non-empty score shards dispatched (serial passes count one each).
    pub score_shards_spawned: u64,
    /// Readiness values served from a [`ScoreShard`] memo instead of
    /// being recomputed.
    pub score_cache_shard_hits: u64,
    /// Times the per-qubit gate lists were rebuilt after the frontier
    /// went stale (lazy rebuilds, so this counts actual work done).
    pub frontier_rebuilds: u64,
    /// Times the scheduler entered the stall-fallback path (no candidate
    /// swap made progress for `max_stall_iterations` rounds).
    pub stall_fallback_entries: u64,
    /// Wall time spent inside scoring passes, in nanoseconds. Timing is
    /// observation-only and never feeds back into candidate choice, so it
    /// cannot perturb the schedule.
    pub scoring_time_ns: u64,
}

impl ScoringTelemetry {
    /// Accumulates another run's counters into `self`.
    pub fn merge(&mut self, other: &ScoringTelemetry) {
        self.candidates_scored += other.candidates_scored;
        self.score_shards_spawned += other.score_shards_spawned;
        self.score_cache_shard_hits += other.score_cache_shard_hits;
        self.frontier_rebuilds += other.frontier_rebuilds;
        self.stall_fallback_entries += other.stall_fallback_entries;
        self.scoring_time_ns = self.scoring_time_ns.saturating_add(other.scoring_time_ns);
    }
}

/// `true` if `(score, idx)` beats the current best under the shared total
/// order: strictly lower score first (`f64::total_cmp`, so NaN sorts
/// deterministically instead of poisoning the comparison), lower
/// candidate index on exact ties. Both the serial scan and the shard
/// reduction use this single comparator — the order is total, so the
/// shard-local-winner reduction is associative and the final pick is
/// independent of the shard count.
#[inline]
pub(crate) fn better_candidate(score: f64, idx: usize, best: Option<(f64, usize)>) -> bool {
    match best {
        None => true,
        Some((best_score, best_idx)) => match score.total_cmp(&best_score) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => idx < best_idx,
            std::cmp::Ordering::Greater => false,
        },
    }
}

/// What one scoring pass evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PassPhase {
    /// Score `candidates` with `score_swap_sharded` over the prepared
    /// scoring scratch.
    Candidates,
    /// Score `gates` (the stall-fallback frontier) with
    /// `gate_score_sharded`.
    FallbackGates,
}

/// The read-only inputs of one scoring pass, published by the main thread
/// before it wakes the crew. The buffers are swapped in and out of the
/// scheduler's scratch (never cloned), so steady-state passes allocate
/// nothing.
#[derive(Debug)]
pub(crate) struct PassData {
    pub phase: PassPhase,
    pub scoring: ScoringScratch,
    pub candidates: Vec<GenericSwap>,
    pub gates: Vec<Gate>,
}

impl PassData {
    pub(crate) fn len(&self) -> usize {
        match self.phase {
            PassPhase::Candidates => self.candidates.len(),
            PassPhase::FallbackGates => self.gates.len(),
        }
    }
}

/// One shard's contribution to a pass.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardResult {
    /// The shard-local winner under [`better_candidate`], as
    /// `(score, global candidate index)`; `None` for an empty slice.
    pub best: Option<(f64, usize)>,
    /// Memo hits this shard accumulated during the pass.
    pub hits: u64,
}

/// State shared between the scheduler's main loop and its scoring crew
/// for the duration of one `run`.
pub(crate) struct CrewShared {
    /// The live placement. The main thread holds the write lock through
    /// every mutation phase (gate execution, swap application, fallback
    /// routing) and releases it only while the crew scores.
    pub placement: RwLock<Placement>,
    /// The current pass's inputs (swapped with scheduler scratch).
    pub pass: RwLock<PassData>,
    /// Per-shard results; index 0 belongs to the main thread and is
    /// written directly, helpers publish under their slot's mutex.
    pub results: Vec<Mutex<ShardResult>>,
    /// Helpers still scoring the current pass.
    pending: AtomicUsize,
    /// Tells parked helpers to exit (end of run, or main-thread unwind).
    stop: AtomicBool,
    /// Set by a helper whose scoring closure panicked.
    poisoned: AtomicBool,
    /// Pass generation counter; helpers park until it advances.
    wake: Mutex<u64>,
    cv: Condvar,
}

impl CrewShared {
    pub(crate) fn new(placement: Placement, num_shards: usize) -> Self {
        CrewShared {
            placement: RwLock::new(placement),
            pass: RwLock::new(PassData {
                phase: PassPhase::Candidates,
                scoring: ScoringScratch::default(),
                candidates: Vec::new(),
                gates: Vec::new(),
            }),
            results: (0..num_shards).map(|_| Mutex::new(ShardResult::default())).collect(),
            pending: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            wake: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Wakes every helper for the pass just published. Caller must have
    /// dropped its `placement` / `pass` guards first.
    pub(crate) fn dispatch(&self) {
        self.pending.store(self.results.len() - 1, Ordering::Release);
        {
            let mut gen = self.wake.lock().expect("crew wake lock");
            *gen += 1;
        }
        self.cv.notify_all();
    }

    /// Waits for every helper to finish the current pass. Spin-waits: the
    /// helpers' shards are the same size as the slice the main thread
    /// just scored itself, so the residual wait is microseconds at most.
    ///
    /// # Panics
    ///
    /// Re-raises (as a fresh panic) when a helper's scoring panicked —
    /// matching the serial path, where the same panic would surface on
    /// this thread.
    pub(crate) fn wait(&self) {
        let mut spins = 0u32;
        while self.pending.load(Ordering::Acquire) != 0 {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            panic!("a parallel scoring worker panicked");
        }
    }

    /// Releases the crew: parked helpers wake and exit their loop. Safe
    /// to call more than once; called by [`StopGuard`] on scope exit and
    /// on main-thread unwind (without it, a panicking scheduler would
    /// deadlock joining helpers parked forever).
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        drop(self.wake.lock().expect("crew wake lock"));
        self.cv.notify_all();
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Shuts the crew down when dropped — the unwind-safety net keeping a
/// main-thread panic from deadlocking the scope join on parked helpers.
pub(crate) struct StopGuard<'a>(pub &'a CrewShared);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Scores this shard's contiguous slice of the pass: shard `k` of `n`
/// takes candidate indices `[k·⌈len/n⌉, (k+1)·⌈len/n⌉)`. Slicing by
/// index keeps every score attached to its global candidate id, which is
/// what makes the [`better_candidate`] reduction order-independent.
pub(crate) fn score_shard(
    scorer: &HeuristicScorer<'_>,
    pass: &PassData,
    placement: &Placement,
    shard_idx: usize,
    num_shards: usize,
    shard: &mut ScoreShard,
) -> ShardResult {
    let n = pass.len();
    let chunk = n.div_ceil(num_shards.max(1)).max(1);
    let lo = (shard_idx * chunk).min(n);
    let hi = ((shard_idx + 1) * chunk).min(n);
    let mut best: Option<(f64, usize)> = None;
    if lo < hi {
        shard.begin_pass();
        match pass.phase {
            PassPhase::Candidates => {
                for (i, swap) in pass.candidates[lo..hi].iter().enumerate() {
                    let i = lo + i;
                    let score = scorer.score_swap_sharded(&pass.scoring, shard, placement, swap);
                    if better_candidate(score, i, best) {
                        best = Some((score, i));
                    }
                }
            }
            PassPhase::FallbackGates => {
                for (i, gate) in pass.gates[lo..hi].iter().enumerate() {
                    let i = lo + i;
                    let score = scorer.gate_score_sharded(shard, placement, gate);
                    if better_candidate(score, i, best) {
                        best = Some((score, i));
                    }
                }
            }
        }
    }
    ShardResult { best, hits: shard.take_hits() }
}

/// The helper-thread loop: park until the generation advances, score this
/// shard's slice of the published pass against the placement snapshot,
/// publish the result, repeat until shutdown. Each helper owns one
/// [`ScoreShard`] for the whole run, so its memo allocations persist
/// across iterations.
pub(crate) fn crew_worker(
    shared: &CrewShared,
    shard_idx: usize,
    num_shards: usize,
    graph: &SlotGraph,
    router: &TrapRouter,
    config: &CompilerConfig,
    dist: &DistanceMatrix,
) {
    let scorer = HeuristicScorer::with_distance_matrix(graph, router, config, dist);
    let mut shard = ScoreShard::default();
    let mut seen = 0u64;
    loop {
        {
            let mut gen = shared.wake.lock().expect("crew wake lock");
            while *gen == seen && !shared.stopped() {
                gen = shared.cv.wait(gen).expect("crew wake lock");
            }
            if shared.stopped() {
                return;
            }
            seen = *gen;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let placement = shared.placement.read().expect("crew placement lock");
            let pass = shared.pass.read().expect("crew pass lock");
            score_shard(&scorer, &pass, &placement, shard_idx, num_shards, &mut shard)
        }));
        let poisoned = match outcome {
            Ok(result) => {
                *shared.results[shard_idx].lock().expect("crew result lock") = result;
                false
            }
            Err(_) => {
                shared.poisoned.store(true, Ordering::Release);
                true
            }
        };
        // Decrement last: the main thread reads the result slot only
        // after the countdown reaches zero.
        shared.pending.fetch_sub(1, Ordering::AcqRel);
        if poisoned {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_candidate_orders_by_score_then_index() {
        assert!(better_candidate(1.0, 5, None));
        assert!(better_candidate(1.0, 5, Some((2.0, 0))));
        assert!(!better_candidate(2.0, 0, Some((1.0, 5))));
        // Exact tie: the lower candidate index wins.
        assert!(better_candidate(1.0, 2, Some((1.0, 3))));
        assert!(!better_candidate(1.0, 3, Some((1.0, 2))));
    }

    #[test]
    fn better_candidate_is_nan_safe() {
        // NaN sorts above every real score under total_cmp: a NaN
        // candidate never displaces a finite one, and two NaNs tie by
        // index — no unwrap, no order-dependence.
        assert!(!better_candidate(f64::NAN, 0, Some((1.0, 5))));
        assert!(better_candidate(1.0, 5, Some((f64::NAN, 0))));
        assert!(better_candidate(f64::NAN, 1, Some((f64::NAN, 2))));
        assert!(better_candidate(f64::INFINITY, 1, Some((f64::NAN, 0))));
    }

    #[test]
    fn shard_reduction_matches_serial_scan() {
        // Reducing shard-local winners in shard order must equal a full
        // left-to-right scan for any shard count — the property the
        // epsilon comparator lacked.
        let scores = [3.0, 1.0, 4.0, 1.0, 5.0, 1.0, 2.0, 6.0];
        let mut serial: Option<(f64, usize)> = None;
        for (i, &s) in scores.iter().enumerate() {
            if better_candidate(s, i, serial) {
                serial = Some((s, i));
            }
        }
        for shards in 1..=scores.len() {
            let chunk = scores.len().div_ceil(shards);
            let mut merged: Option<(f64, usize)> = None;
            for k in 0..shards {
                let lo = (k * chunk).min(scores.len());
                let hi = ((k + 1) * chunk).min(scores.len());
                let mut local: Option<(f64, usize)> = None;
                for (i, &s) in scores.iter().enumerate().take(hi).skip(lo) {
                    if better_candidate(s, i, local) {
                        local = Some((s, i));
                    }
                }
                if let Some((s, i)) = local {
                    if better_candidate(s, i, merged) {
                        merged = Some((s, i));
                    }
                }
            }
            assert_eq!(merged, serial, "shards = {shards}");
        }
    }

    #[test]
    fn resolve_prefers_explicit_config_over_env() {
        // An explicit positive count is a pinned budget: it must win even
        // when the env var is set (the pool relies on this).
        assert_eq!(resolve_scoring_threads(3), 3);
        if std::env::var(SCORE_THREADS_ENV).is_err() {
            assert_eq!(resolve_scoring_threads(0), 1);
        } else {
            assert!(resolve_scoring_threads(0) >= 1);
        }
    }

    #[test]
    fn budget_never_oversubscribes_and_never_hits_zero() {
        let host = std::thread::available_parallelism().map_or(1, usize::from);
        assert_eq!(budget_scoring_threads(1, 8), 1);
        assert!(budget_scoring_threads(64, 1) <= 64.max(host));
        assert!(budget_scoring_threads(8, 10_000) >= 1);
        assert!(budget_scoring_threads(0, 0) >= 1);
        // With as many pool workers as cores, each compile gets one
        // scoring thread no matter what it asked for.
        assert_eq!(budget_scoring_threads(8, host), 1);
    }
}
