//! The heuristic cost function of Sec. 3.3 (Eqs. 1–2) and the decay
//! tracker that spreads generic swaps across qubits.

use crate::config::CompilerConfig;
use crate::generic_swap::{GenericSwap, GenericSwapKind};
use ssync_arch::{DistanceMatrix, Placement, SlotGraph, SlotId, TrapId, TrapRouter};
use ssync_circuit::{Gate, NodeId, Qubit};

/// Tracks, per program qubit, how recently it was involved in a generic
/// swap. A gate whose qubit moved within the last `reset_interval`
/// scheduler iterations gets its score inflated by `1 + δ`, discouraging
/// the scheduler from repeatedly serving the same gate (Eq. 1).
#[derive(Debug, Clone)]
pub struct DecayTracker {
    delta: f64,
    reset_interval: usize,
    last_involved: Vec<Option<usize>>,
    iteration: usize,
}

impl DecayTracker {
    /// Creates a tracker for `num_qubits` qubits.
    pub fn new(num_qubits: usize, delta: f64, reset_interval: usize) -> Self {
        DecayTracker {
            delta,
            reset_interval: reset_interval.max(1),
            last_involved: vec![None; num_qubits],
            iteration: 0,
        }
    }

    /// Advances the scheduler-iteration counter.
    pub fn tick(&mut self) {
        self.iteration += 1;
    }

    /// Records that `qubit` took part in a generic swap this iteration.
    pub fn mark(&mut self, qubit: Qubit) {
        if let Some(slot) = self.last_involved.get_mut(qubit.index()) {
            *slot = Some(self.iteration);
        }
    }

    /// The decay factor of a single qubit (`1 + δ` if recently moved).
    pub fn factor(&self, qubit: Qubit) -> f64 {
        match self.last_involved.get(qubit.index()).copied().flatten() {
            Some(it) if self.iteration.saturating_sub(it) < self.reset_interval => 1.0 + self.delta,
            _ => 1.0,
        }
    }

    /// The decay factor of a gate: `1 + δ` if either operand moved recently.
    pub fn gate_factor(&self, gate: &Gate) -> f64 {
        gate.qubits().iter().map(|&q| self.factor(q)).fold(1.0f64, f64::max)
    }

    /// Current iteration counter (for introspection/tests).
    pub fn iteration(&self) -> usize {
        self.iteration
    }
}

/// Evaluates the heuristic of Eqs. (1)–(2) for candidate generic swaps.
///
/// `score(g) = dis(π(g.q1) → … → π(g.q2)) + Pen`, where `dis` accumulates
/// intra-trap inner weights and inter-trap shuttle weights along the
/// cheapest route, and `Pen` counts traps left without a free space.
/// `H(swap) = min_g decay(g)·score(g) + w(swap)` over the frontier gates.
#[derive(Debug)]
pub struct HeuristicScorer<'a> {
    graph: &'a SlotGraph,
    router: &'a TrapRouter,
    config: &'a CompilerConfig,
    dist: Option<&'a DistanceMatrix>,
}

impl<'a> HeuristicScorer<'a> {
    /// Creates a scorer over a device graph and its trap router. Distances
    /// are derived on the fly; prefer
    /// [`HeuristicScorer::with_distance_matrix`] on any hot path.
    pub fn new(graph: &'a SlotGraph, router: &'a TrapRouter, config: &'a CompilerConfig) -> Self {
        HeuristicScorer { graph, router, config, dist: None }
    }

    /// Creates a scorer that reads slot distances from a precomputed
    /// [`DistanceMatrix`] instead of chaining router/port lookups per call.
    /// The matrix holds exactly the values [`HeuristicScorer::slot_distance`]
    /// would compute, so scores are bit-identical either way.
    pub fn with_distance_matrix(
        graph: &'a SlotGraph,
        router: &'a TrapRouter,
        config: &'a CompilerConfig,
        dist: &'a DistanceMatrix,
    ) -> Self {
        HeuristicScorer { graph, router, config, dist: Some(dist) }
    }

    /// The routing distance between two slots: inner-weight steps to reach
    /// the exit port, shuttle weights across traps, inner-weight steps from
    /// the entry port (Eq. 2's `dis` term under the static formulation).
    pub fn slot_distance(&self, a: SlotId, b: SlotId) -> f64 {
        if let Some(dist) = self.dist {
            return dist.get(a, b);
        }
        let inner = self.config.weights.inner_weight;
        let ta = self.graph.slot_trap(a);
        let tb = self.graph.slot_trap(b);
        if ta == tb {
            return inner * self.graph.intra_trap_distance(a, b) as f64;
        }
        let exit_towards = self.router.next_hop(ta, tb).unwrap_or(tb);
        let exit_slot = self.graph.topology().port_slot(ta, exit_towards);
        let entry_from = self.router.next_hop(tb, ta).unwrap_or(ta);
        let entry_slot = self.graph.topology().port_slot(tb, entry_from);
        inner * self.graph.intra_trap_distance(a, exit_slot) as f64
            + self.router.distance(ta, tb)
            + inner * self.graph.intra_trap_distance(entry_slot, b) as f64
    }

    /// Chain-position distance from the nearest space node of `trap` to the
    /// slot `port`, optionally pretending `swap` has been applied. Returns
    /// the trap capacity when the trap has no space at all. This is the
    /// "shuttle readiness" term: the route physically needs an empty port
    /// on the receiving side.
    fn space_readiness(
        &self,
        placement: &Placement,
        swap: Option<&GenericSwap>,
        port: SlotId,
    ) -> f64 {
        let trap = self.graph.slot_trap(port);
        let port_pos = self.graph.slot_position(port);
        let trap_ref = self.graph.topology().trap(trap);
        let mut best: Option<usize> = None;
        // Iterate chain positions directly (trap slots are contiguous), so
        // the readiness scan allocates nothing.
        for pos in 0..trap_ref.capacity() {
            let s = trap_ref.slot_at(pos);
            let occupied = match swap {
                Some(sw) if s == sw.a => placement.occupant(sw.b).is_some(),
                Some(sw) if s == sw.b => placement.occupant(sw.a).is_some(),
                _ => placement.occupant(s).is_some(),
            };
            if !occupied {
                let d = pos.abs_diff(port_pos);
                best = Some(best.map_or(d, |b| b.min(d)));
            }
        }
        best.unwrap_or(trap_ref.capacity()) as f64
    }

    /// Route score of a qubit pair at slots `s1`, `s2`, optionally after a
    /// hypothetical swap: the weighted distance of Eq. (2) plus, when the
    /// qubits are in different traps, the readiness of the next-hop entry
    /// ports (an empty slot must be available at the receiving chain end).
    fn pair_route_score(
        &self,
        placement: &Placement,
        swap: Option<&GenericSwap>,
        s1: SlotId,
        s2: SlotId,
    ) -> f64 {
        let inner = self.config.weights.inner_weight;
        let mut score = self.slot_distance(s1, s2);
        let ta = self.graph.slot_trap(s1);
        let tb = self.graph.slot_trap(s2);
        if ta != tb {
            let mut readiness = f64::INFINITY;
            if let Some(next) = self.router.next_hop(ta, tb) {
                let entry = self.graph.topology().port_slot(next, ta);
                readiness = readiness.min(self.space_readiness(placement, swap, entry));
            }
            if let Some(next) = self.router.next_hop(tb, ta) {
                let entry = self.graph.topology().port_slot(next, tb);
                readiness = readiness.min(self.space_readiness(placement, swap, entry));
            }
            if readiness.is_finite() {
                score += inner * readiness;
            }
        }
        score
    }

    /// The score of a single gate under the current placement (Eq. 2):
    /// routing distance plus the full-trap penalty.
    pub fn gate_score(&self, placement: &Placement, gate: &Gate) -> f64 {
        let Some((q1, q2)) = gate.two_qubit_pair() else {
            return 0.0;
        };
        let (Some(s1), Some(s2)) = (placement.slot_of(q1), placement.slot_of(q2)) else {
            return f64::INFINITY;
        };
        self.pair_route_score(placement, None, s1, s2) + placement.full_trap_count() as f64
    }

    /// The slots of the gate's qubits after hypothetically applying `swap`.
    fn slots_after(
        &self,
        placement: &Placement,
        gate: &Gate,
        swap: &GenericSwap,
    ) -> Option<(SlotId, SlotId)> {
        let (q1, q2) = gate.two_qubit_pair()?;
        let (s1, s2) = (placement.slot_of(q1)?, placement.slot_of(q2)?);
        let occ_a = placement.occupant(swap.a);
        let occ_b = placement.occupant(swap.b);
        Some(slots_after_swap(q1, q2, s1, s2, swap, occ_a, occ_b))
    }

    /// The score of `gate` if `swap` were applied (no placement mutation:
    /// the swap only relocates the occupants of its two endpoints and can
    /// only change the full-trap penalty when it is a shuttle).
    pub fn gate_score_after(&self, placement: &Placement, gate: &Gate, swap: &GenericSwap) -> f64 {
        let Some((s1, s2)) = self.slots_after(placement, gate, swap) else {
            return if gate.two_qubit_pair().is_none() { 0.0 } else { f64::INFINITY };
        };
        self.pair_route_score(placement, Some(swap), s1, s2)
            + self.penalty_after(placement, swap) as f64
    }

    /// `true` if applying `swap` would let `gate` execute immediately (its
    /// qubits end up in the same trap).
    pub fn makes_executable(&self, placement: &Placement, gate: &Gate, swap: &GenericSwap) -> bool {
        match self.slots_after(placement, gate, swap) {
            Some((s1, s2)) => self.graph.same_trap(s1, s2),
            None => false,
        }
    }

    /// The full-trap penalty after hypothetically applying `swap`.
    pub fn penalty_after(&self, placement: &Placement, swap: &GenericSwap) -> usize {
        self.penalty_with(placement, swap, placement.full_trap_count())
    }

    /// The full heuristic `H(swap)` of Eq. (1) over the given frontier
    /// gates. Lower is better. Returns `w(swap)` alone if the frontier is
    /// empty (should not happen during scheduling).
    pub fn score_swap(
        &self,
        placement: &Placement,
        decay: &DecayTracker,
        frontier: &[Gate],
        lookahead: &[Gate],
        swap: &GenericSwap,
    ) -> f64 {
        let mut best_gate_term = f64::INFINITY;
        let mut enables_gate = false;
        for g in frontier {
            let term = decay.gate_factor(g) * self.gate_score_after(placement, g, swap);
            if term < best_gate_term {
                best_gate_term = term;
            }
            if !enables_gate
                && !self.is_already_executable(placement, g)
                && self.makes_executable(placement, g, swap)
            {
                enables_gate = true;
            }
        }
        let gate_term = if best_gate_term.is_finite() { best_gate_term } else { 0.0 };
        // Extended look-ahead (SABRE-style): moves that also help upcoming
        // gates are preferred, which suppresses ping-pong shuttling on
        // all-to-all workloads such as the QFT.
        let lookahead_term = if lookahead.is_empty() {
            0.0
        } else {
            let sum: f64 =
                lookahead.iter().map(|g| self.gate_score_after(placement, g, swap)).sum();
            0.5 * sum / lookahead.len() as f64
        };
        // A SWAP gate is three entangling gates; weight it accordingly so
        // walking a qubit through a free space (reorders) is preferred over
        // swapping it past other ions when both routes exist.
        let effective_weight = match swap.kind {
            crate::generic_swap::GenericSwapKind::SwapGate => 3.0 * swap.weight,
            _ => swap.weight,
        };
        let bonus = if enables_gate { self.config.executable_bonus } else { 0.0 };
        gate_term + lookahead_term + effective_weight - bonus
    }

    /// `true` if the gate's qubits already share a trap.
    fn is_already_executable(&self, placement: &Placement, gate: &Gate) -> bool {
        match gate.two_qubit_pair() {
            Some((a, b)) => match (placement.slot_of(a), placement.slot_of(b)) {
                (Some(sa), Some(sb)) => self.graph.same_trap(sa, sb),
                _ => false,
            },
            None => true,
        }
    }
}

/// One gate of the active scoring pass, with every placement-derived term
/// precomputed so that scoring a candidate against it is O(1) in the
/// common case.
#[derive(Debug, Clone, Copy)]
struct GateTerm {
    q1: Qubit,
    q2: Qubit,
    s1: SlotId,
    s2: SlotId,
    ta: TrapId,
    tb: TrapId,
    /// Traps whose occupancy pattern feeds the readiness term (the
    /// next-hop entry traps of the route), `None` for same-trap gates.
    entry_a: Option<TrapId>,
    entry_b: Option<TrapId>,
    /// `pair_route_score(placement, None, s1, s2)` — the cached base.
    route: f64,
    /// Decay factor (frontier gates only; 1.0 for look-ahead gates).
    decay: f64,
    /// `true` if the gate's qubits already share a trap.
    executable: bool,
}

/// Cross-iteration cache of per-gate base route scores.
///
/// A gate's base score (`pair_route_score` with no hypothetical swap)
/// depends on (a) the slots of its two operands and (b) the occupancy
/// *pattern* of the two next-hop entry traps along its route (the
/// readiness term). The cache therefore keys each entry on the operand
/// slots plus a per-trap epoch counter: the scheduler bumps a trap's
/// epoch whenever an applied generic swap changes which of its slots are
/// occupied (reorders and shuttles — SWAP gates permute ions between two
/// occupied slots and leave the pattern untouched). An entry is reused
/// only when both the slots and the entry-trap epochs still match, which
/// makes the cached value bit-identical to a fresh recomputation.
#[derive(Debug, Clone)]
pub struct ScoreCache {
    entries: Vec<CachedRoute>,
    trap_epoch: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct CachedRoute {
    set: bool,
    s1: SlotId,
    s2: SlotId,
    epoch_a: u64,
    epoch_b: u64,
    route: f64,
}

impl ScoreCache {
    /// Creates an empty cache for `num_gates` DAG nodes on `num_traps`
    /// traps.
    pub fn new(num_gates: usize, num_traps: usize) -> Self {
        ScoreCache {
            entries: vec![
                CachedRoute {
                    set: false,
                    s1: SlotId(0),
                    s2: SlotId(0),
                    epoch_a: 0,
                    epoch_b: 0,
                    route: 0.0,
                };
                num_gates
            ],
            trap_epoch: vec![0; num_traps],
        }
    }

    /// Invalidates readiness-dependent entries touching `trap` (call after
    /// an applied reorder or shuttle changed its occupancy pattern).
    pub fn bump_trap(&mut self, trap: TrapId) {
        self.trap_epoch[trap.index()] += 1;
    }

    /// Invalidates every cached entry (call after bulk placement changes,
    /// e.g. the deterministic fallback router).
    pub fn bump_all(&mut self) {
        for e in &mut self.entries {
            e.set = false;
        }
    }

    #[inline]
    fn epoch_of(&self, trap: Option<TrapId>) -> u64 {
        trap.map_or(0, |t| self.trap_epoch[t.index()])
    }
}

/// A worker-local memo of space-readiness values, valid for one scoring
/// pass (one placement snapshot) at a time.
///
/// The readiness term of `HeuristicScorer::pair_route_score` asks "how
/// far is the nearest empty slot from this entry port?". Under a
/// hypothetical swap whose endpoints both lie *outside* the port's trap,
/// the answer is provably identical to the no-swap answer — the swap
/// cannot change that trap's occupancy pattern — so the value can be
/// computed once per (pass, port) and reused across every candidate of
/// the pass. Each scoring worker (the serial path counts as one) owns one
/// shard; shards never merge and never need invalidation messages:
/// [`ScoreShard::begin_pass`] bumps an epoch that lazily invalidates every
/// slot, and the backing buffers persist across passes and compiles so the
/// steady state allocates nothing. Values read through the memo are
/// bit-identical to a fresh `HeuristicScorer::space_readiness` call,
/// which keeps sharded scoring inside the scheduler's golden determinism
/// contract.
#[derive(Debug, Clone, Default)]
pub struct ScoreShard {
    stamp: Vec<u64>,
    value: Vec<f64>,
    epoch: u64,
    hits: u64,
}

impl ScoreShard {
    /// Starts a new scoring pass: every memoised value becomes stale.
    /// Call whenever the placement the pass scores against may have
    /// changed (the scheduler calls it once per candidate pass).
    pub fn begin_pass(&mut self) {
        self.epoch += 1;
    }

    /// Memo hits accumulated since the last [`ScoreShard::take_hits`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Returns and resets the accumulated memo-hit counter.
    pub fn take_hits(&mut self) -> u64 {
        std::mem::take(&mut self.hits)
    }

    #[inline]
    fn lookup(&mut self, slot: usize) -> Option<f64> {
        if self.stamp.get(slot) == Some(&self.epoch) {
            self.hits += 1;
            return Some(self.value[slot]);
        }
        None
    }

    #[inline]
    fn store(&mut self, slot: usize, v: f64) {
        if slot >= self.stamp.len() {
            self.stamp.resize(slot + 1, 0);
            self.value.resize(slot + 1, 0.0);
        }
        self.stamp[slot] = self.epoch;
        self.value[slot] = v;
    }
}

/// Per-iteration scoring pass over the frontier and look-ahead gates.
///
/// Built once per scheduler iteration by [`HeuristicScorer::prepare_pass`]
/// and then read for every candidate via
/// [`HeuristicScorer::score_swap_prepared`], which reproduces
/// [`HeuristicScorer::score_swap`] bit for bit while touching each gate in
/// O(1) unless the candidate actually relocates one of its operands or
/// perturbs its readiness traps.
#[derive(Debug, Clone, Default)]
pub struct ScoringScratch {
    terms: Vec<GateTerm>,
    frontier_len: usize,
    full_traps: usize,
}

impl ScoringScratch {
    /// The full-trap penalty of the pass's placement snapshot.
    pub fn full_traps(&self) -> usize {
        self.full_traps
    }

    /// The cached base score of the `i`-th frontier gate of the pass, as
    /// [`HeuristicScorer::gate_score`] would report it (route + penalty).
    pub fn frontier_gate_score(&self, i: usize) -> f64 {
        self.terms[i].route + self.full_traps as f64
    }
}

impl<'a> HeuristicScorer<'a> {
    /// Prepares a scoring pass: computes (or reuses from `cache`) the base
    /// score of every frontier and look-ahead gate under the current
    /// placement. Gate lists carry DAG node ids so cached entries survive
    /// across iterations until an operand moves or an entry trap's
    /// occupancy pattern changes.
    pub fn prepare_pass(
        &self,
        scratch: &mut ScoringScratch,
        cache: &mut ScoreCache,
        placement: &Placement,
        decay: &DecayTracker,
        frontier: &[(NodeId, Gate)],
        lookahead: &[(NodeId, Gate)],
    ) {
        scratch.terms.clear();
        scratch.frontier_len = frontier.len();
        scratch.full_traps = placement.full_trap_count();
        for (is_frontier, list) in [(true, frontier), (false, lookahead)] {
            for &(id, gate) in list {
                let term = self.gate_term(cache, placement, id, &gate, is_frontier, decay);
                scratch.terms.push(term);
            }
        }
    }

    fn gate_term(
        &self,
        cache: &mut ScoreCache,
        placement: &Placement,
        id: NodeId,
        gate: &Gate,
        is_frontier: bool,
        decay: &DecayTracker,
    ) -> GateTerm {
        let (q1, q2) =
            gate.two_qubit_pair().expect("the scheduler DAG only contains two-qubit gates");
        let s1 = placement.slot_of(q1).expect("scheduled qubits are placed");
        let s2 = placement.slot_of(q2).expect("scheduled qubits are placed");
        let ta = self.graph.slot_trap(s1);
        let tb = self.graph.slot_trap(s2);
        let (entry_a, entry_b) = if ta == tb {
            (None, None)
        } else {
            (self.router.next_hop(ta, tb), self.router.next_hop(tb, ta))
        };
        let epoch_a = cache.epoch_of(entry_a);
        let epoch_b = cache.epoch_of(entry_b);
        let cached = &mut cache.entries[id.0];
        let route = if cached.set
            && cached.s1 == s1
            && cached.s2 == s2
            && cached.epoch_a == epoch_a
            && cached.epoch_b == epoch_b
        {
            cached.route
        } else {
            let route = self.pair_route_score(placement, None, s1, s2);
            *cached = CachedRoute { set: true, s1, s2, epoch_a, epoch_b, route };
            route
        };
        GateTerm {
            q1,
            q2,
            s1,
            s2,
            ta,
            tb,
            entry_a,
            entry_b,
            route,
            decay: if is_frontier { decay.gate_factor(gate) } else { 1.0 },
            executable: ta == tb,
        }
    }

    /// `H(swap)` over a prepared pass — bit-identical to
    /// [`HeuristicScorer::score_swap`] on the same frontier / look-ahead
    /// lists, but each unchanged gate costs an integer compare instead of a
    /// route recomputation.
    pub fn score_swap_prepared(
        &self,
        scratch: &ScoringScratch,
        placement: &Placement,
        swap: &GenericSwap,
    ) -> f64 {
        self.score_swap_impl(scratch, placement, swap, None)
    }

    /// [`HeuristicScorer::score_swap_prepared`] routing readiness lookups
    /// through a worker-local [`ScoreShard`] memo. Bit-identical to the
    /// unsharded call (the memo only serves values the swap provably
    /// cannot perturb); the scheduler's serial and parallel scoring paths
    /// both use this entry point.
    pub fn score_swap_sharded(
        &self,
        scratch: &ScoringScratch,
        shard: &mut ScoreShard,
        placement: &Placement,
        swap: &GenericSwap,
    ) -> f64 {
        self.score_swap_impl(scratch, placement, swap, Some(shard))
    }

    fn score_swap_impl(
        &self,
        scratch: &ScoringScratch,
        placement: &Placement,
        swap: &GenericSwap,
        mut shard: Option<&mut ScoreShard>,
    ) -> f64 {
        let occ_a = placement.occupant(swap.a);
        let occ_b = placement.occupant(swap.b);
        let pen_after = self.penalty_with(placement, swap, scratch.full_traps) as f64;
        let swap_ta = self.graph.slot_trap(swap.a);
        let swap_tb = self.graph.slot_trap(swap.b);
        let pattern_preserving = swap.kind == GenericSwapKind::SwapGate;

        let mut best_gate_term = f64::INFINITY;
        let mut enables_gate = false;
        let (frontier, lookahead) = scratch.terms.split_at(scratch.frontier_len);
        for t in frontier {
            let (s1, s2) = slots_after_swap(t.q1, t.q2, t.s1, t.s2, swap, occ_a, occ_b);
            let score = self.term_score(
                t,
                placement,
                swap,
                s1,
                s2,
                pen_after,
                pattern_preserving,
                swap_ta,
                swap_tb,
                shard.as_deref_mut(),
            );
            let term = t.decay * score;
            if term < best_gate_term {
                best_gate_term = term;
            }
            if !enables_gate && !t.executable && self.graph.same_trap(s1, s2) {
                enables_gate = true;
            }
        }
        let gate_term = if best_gate_term.is_finite() { best_gate_term } else { 0.0 };
        let lookahead_term = if lookahead.is_empty() {
            0.0
        } else {
            let mut sum = 0.0f64;
            for t in lookahead {
                let (s1, s2) = slots_after_swap(t.q1, t.q2, t.s1, t.s2, swap, occ_a, occ_b);
                sum += self.term_score(
                    t,
                    placement,
                    swap,
                    s1,
                    s2,
                    pen_after,
                    pattern_preserving,
                    swap_ta,
                    swap_tb,
                    shard.as_deref_mut(),
                );
            }
            0.5 * sum / lookahead.len() as f64
        };
        let effective_weight = match swap.kind {
            GenericSwapKind::SwapGate => 3.0 * swap.weight,
            _ => swap.weight,
        };
        let bonus = if enables_gate { self.config.executable_bonus } else { 0.0 };
        gate_term + lookahead_term + effective_weight - bonus
    }

    /// The score of one prepared gate under a hypothetical swap: the cached
    /// base when the swap provably cannot change the gate's route or
    /// readiness, the full recomputation otherwise.
    #[allow(clippy::too_many_arguments)]
    fn term_score(
        &self,
        t: &GateTerm,
        placement: &Placement,
        swap: &GenericSwap,
        s1: SlotId,
        s2: SlotId,
        pen_after: f64,
        pattern_preserving: bool,
        swap_ta: TrapId,
        swap_tb: TrapId,
        shard: Option<&mut ScoreShard>,
    ) -> f64 {
        let slots_unchanged = s1 == t.s1 && s2 == t.s2;
        let readiness_unchanged = pattern_preserving
            || t.ta == t.tb
            || (Some(swap_ta) != t.entry_a
                && Some(swap_ta) != t.entry_b
                && Some(swap_tb) != t.entry_a
                && Some(swap_tb) != t.entry_b);
        if slots_unchanged && readiness_unchanged {
            t.route + pen_after
        } else {
            match shard {
                Some(sh) => {
                    self.pair_route_score_memo(sh, placement, swap, swap_ta, swap_tb, s1, s2)
                        + pen_after
                }
                None => self.pair_route_score(placement, Some(swap), s1, s2) + pen_after,
            }
        }
    }

    /// [`HeuristicScorer::pair_route_score`] under a hypothetical swap,
    /// serving readiness values from `shard` whenever the swap provably
    /// cannot change them. A swap only perturbs the occupancy pattern of
    /// the traps holding its endpoints, so for any entry port outside
    /// `swap_ta`/`swap_tb` the with-swap readiness equals the no-swap
    /// readiness — that value is memoised per pass and shared across every
    /// candidate the worker scores. Ports inside the swap's traps are
    /// recomputed directly, keeping the result bit-identical to
    /// [`HeuristicScorer::pair_route_score`].
    #[allow(clippy::too_many_arguments)]
    fn pair_route_score_memo(
        &self,
        shard: &mut ScoreShard,
        placement: &Placement,
        swap: &GenericSwap,
        swap_ta: TrapId,
        swap_tb: TrapId,
        s1: SlotId,
        s2: SlotId,
    ) -> f64 {
        let inner = self.config.weights.inner_weight;
        let mut score = self.slot_distance(s1, s2);
        let ta = self.graph.slot_trap(s1);
        let tb = self.graph.slot_trap(s2);
        if ta != tb {
            let mut readiness = f64::INFINITY;
            if let Some(next) = self.router.next_hop(ta, tb) {
                let entry = self.graph.topology().port_slot(next, ta);
                readiness = readiness
                    .min(self.readiness_memo(shard, placement, swap, swap_ta, swap_tb, entry));
            }
            if let Some(next) = self.router.next_hop(tb, ta) {
                let entry = self.graph.topology().port_slot(next, tb);
                readiness = readiness
                    .min(self.readiness_memo(shard, placement, swap, swap_ta, swap_tb, entry));
            }
            if readiness.is_finite() {
                score += inner * readiness;
            }
        }
        score
    }

    /// One readiness term through the shard memo: direct recomputation
    /// when `port`'s trap is one of the swap's endpoint traps (the swap
    /// may have changed the pattern), the memoised no-swap value
    /// otherwise.
    fn readiness_memo(
        &self,
        shard: &mut ScoreShard,
        placement: &Placement,
        swap: &GenericSwap,
        swap_ta: TrapId,
        swap_tb: TrapId,
        port: SlotId,
    ) -> f64 {
        let trap = self.graph.slot_trap(port);
        if trap == swap_ta || trap == swap_tb {
            return self.space_readiness(placement, Some(swap), port);
        }
        if let Some(v) = shard.lookup(port.index()) {
            return v;
        }
        let v = self.space_readiness(placement, None, port);
        shard.store(port.index(), v);
        v
    }

    /// [`HeuristicScorer::gate_score`] serving its readiness terms from a
    /// worker-local [`ScoreShard`] memo — used by the stall-fallback
    /// frontier loop, where many gates share the same entry ports.
    /// Bit-identical to [`HeuristicScorer::gate_score`] (no hypothetical
    /// swap is involved, so every port is memoisable).
    pub fn gate_score_sharded(
        &self,
        shard: &mut ScoreShard,
        placement: &Placement,
        gate: &Gate,
    ) -> f64 {
        let Some((q1, q2)) = gate.two_qubit_pair() else {
            return 0.0;
        };
        let (Some(s1), Some(s2)) = (placement.slot_of(q1), placement.slot_of(q2)) else {
            return f64::INFINITY;
        };
        let inner = self.config.weights.inner_weight;
        let mut score = self.slot_distance(s1, s2);
        let ta = self.graph.slot_trap(s1);
        let tb = self.graph.slot_trap(s2);
        if ta != tb {
            let mut readiness = f64::INFINITY;
            if let Some(next) = self.router.next_hop(ta, tb) {
                let entry = self.graph.topology().port_slot(next, ta);
                readiness = readiness.min(self.readiness_none_memo(shard, placement, entry));
            }
            if let Some(next) = self.router.next_hop(tb, ta) {
                let entry = self.graph.topology().port_slot(next, tb);
                readiness = readiness.min(self.readiness_none_memo(shard, placement, entry));
            }
            if readiness.is_finite() {
                score += inner * readiness;
            }
        }
        score + placement.full_trap_count() as f64
    }

    /// The memoised no-swap readiness of one entry port.
    fn readiness_none_memo(
        &self,
        shard: &mut ScoreShard,
        placement: &Placement,
        port: SlotId,
    ) -> f64 {
        if let Some(v) = shard.lookup(port.index()) {
            return v;
        }
        let v = self.space_readiness(placement, None, port);
        shard.store(port.index(), v);
        v
    }

    /// [`HeuristicScorer::penalty_after`] with the current full-trap count
    /// supplied by the caller (hoisted out of the candidate loop).
    fn penalty_with(&self, placement: &Placement, swap: &GenericSwap, full: usize) -> usize {
        let mut pen = full;
        if swap.is_shuttle() {
            let (from_slot, to_slot) = if placement.occupant(swap.a).is_some() {
                (swap.a, swap.b)
            } else {
                (swap.b, swap.a)
            };
            let from = self.graph.slot_trap(from_slot);
            let to = self.graph.slot_trap(to_slot);
            if placement.trap_is_full(from) {
                pen -= 1;
            }
            if placement.trap_free_slots(to) == 1 {
                pen += 1;
            }
        }
        pen
    }
}

/// The slots of a gate's qubits after hypothetically applying `swap`: the
/// single source of truth behind both `HeuristicScorer::slots_after` and
/// the prepared-pass fast path. The swap's endpoint occupants are passed
/// in so the caller can hoist the two lookups out of its gate loop.
#[inline]
fn slots_after_swap(
    q1: Qubit,
    q2: Qubit,
    mut s1: SlotId,
    mut s2: SlotId,
    swap: &GenericSwap,
    occ_a: Option<Qubit>,
    occ_b: Option<Qubit>,
) -> (SlotId, SlotId) {
    for (slot, q) in [(swap.a, occ_a), (swap.b, occ_b)] {
        let other = if slot == swap.a { swap.b } else { swap.a };
        if q == Some(q1) && s1 == slot {
            s1 = other;
        }
        if q == Some(q2) && s2 == slot {
            s2 = other;
        }
    }
    (s1, s2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::{QccdTopology, TrapRouter};
    use ssync_circuit::Qubit;

    fn setup() -> (SlotGraph, TrapRouter, CompilerConfig, Placement) {
        let topo = QccdTopology::linear(3, 4);
        let config = CompilerConfig::default();
        let graph = SlotGraph::new(topo.clone(), config.weights);
        let router = TrapRouter::new(&topo, config.weights);
        let mut p = Placement::new(&topo, 4);
        p.place(Qubit(0), SlotId(0)); // trap 0, left end
        p.place(Qubit(1), SlotId(3)); // trap 0, right end
        p.place(Qubit(2), SlotId(4)); // trap 1, left end
        p.place(Qubit(3), SlotId(11)); // trap 2, right end
        (graph, router, config, p)
    }

    #[test]
    fn decay_tracker_marks_and_resets() {
        let mut d = DecayTracker::new(3, 0.5, 2);
        assert_eq!(d.factor(Qubit(0)), 1.0);
        d.mark(Qubit(0));
        assert_eq!(d.factor(Qubit(0)), 1.5);
        d.tick();
        assert_eq!(d.factor(Qubit(0)), 1.5);
        d.tick();
        assert_eq!(d.factor(Qubit(0)), 1.0); // reset after 2 iterations
        assert_eq!(d.iteration(), 2);
        let gate = Gate::Cx(Qubit(0), Qubit(1));
        d.mark(Qubit(1));
        assert_eq!(d.gate_factor(&gate), 1.5);
    }

    #[test]
    fn slot_distance_within_trap_uses_inner_weight() {
        let (graph, router, config, _) = setup();
        let scorer = HeuristicScorer::new(&graph, &router, &config);
        let d = scorer.slot_distance(SlotId(0), SlotId(3));
        assert!((d - 0.003).abs() < 1e-12);
        assert_eq!(scorer.slot_distance(SlotId(2), SlotId(2)), 0.0);
    }

    #[test]
    fn slot_distance_across_traps_includes_shuttle_weight() {
        let (graph, router, config, _) = setup();
        let scorer = HeuristicScorer::new(&graph, &router, &config);
        // Slot 0 (trap 0, pos 0) to slot 4 (trap 1, pos 0): 3 inner steps to
        // the exit port + 1 shuttle + 0 entry steps.
        let d = scorer.slot_distance(SlotId(0), SlotId(4));
        assert!((d - (0.003 + 1.0)).abs() < 1e-9);
        // Two traps away costs at least two shuttle weights.
        assert!(scorer.slot_distance(SlotId(0), SlotId(11)) > 2.0);
    }

    #[test]
    fn gate_score_prefers_colocated_qubits() {
        let (graph, router, config, p) = setup();
        let scorer = HeuristicScorer::new(&graph, &router, &config);
        let near = Gate::Cx(Qubit(0), Qubit(1));
        let far = Gate::Cx(Qubit(0), Qubit(3));
        assert!(scorer.gate_score(&p, &near) < scorer.gate_score(&p, &far));
    }

    #[test]
    fn score_after_shuttle_reflects_the_move() {
        let (graph, router, config, p) = setup();
        let scorer = HeuristicScorer::new(&graph, &router, &config);
        // Shuttle qubit 1 (slot 3, trap 0's right port) into slot 5? No —
        // the inter-trap edge connects slot 3 and slot 4, but slot 4 is
        // occupied. Instead shuttle qubit 2 from slot 4 into slot 3? Also
        // occupied. Build the hypothetical directly: qubit 1 shuttling into
        // trap 1 would shorten the distance of a gate between q1 and q2.
        let gate = Gate::Cx(Qubit(1), Qubit(3));
        // A reorder of qubit 3 towards its trap's left port (slot 11 -> 10)
        // reduces the eventual distance.
        let swap = GenericSwap {
            a: SlotId(11),
            b: SlotId(10),
            kind: crate::generic_swap::GenericSwapKind::Reorder,
            weight: config.weights.inner_weight,
        };
        let before = scorer.gate_score(&p, &gate);
        let after = scorer.gate_score_after(&p, &gate, &swap);
        assert!(after < before);
    }

    #[test]
    fn penalty_counts_full_traps_after_shuttle() {
        let topo = QccdTopology::linear(2, 2);
        let config = CompilerConfig::default();
        let graph = SlotGraph::new(topo.clone(), config.weights);
        let router = TrapRouter::new(&topo, config.weights);
        let scorer = HeuristicScorer::new(&graph, &router, &config);
        let mut p = Placement::new(&topo, 2);
        p.place(Qubit(0), SlotId(1)); // trap 0 port
        p.place(Qubit(1), SlotId(3)); // trap 1, non-port slot (right end)
                                      // Shuttling qubit 0 into slot 2 fills trap 1.
        let swap = GenericSwap {
            a: SlotId(1),
            b: SlotId(2),
            kind: crate::generic_swap::GenericSwapKind::Shuttle { junctions: 0 },
            weight: 1.0,
        };
        assert_eq!(p.full_trap_count(), 0);
        assert_eq!(scorer.penalty_after(&p, &swap), 1);
    }

    #[test]
    fn score_swap_prefers_helpful_moves() {
        let (graph, router, config, p) = setup();
        let scorer = HeuristicScorer::new(&graph, &router, &config);
        let decay = DecayTracker::new(4, config.decay_delta, config.decay_reset_interval);
        let frontier = vec![Gate::Cx(Qubit(1), Qubit(2))];
        // Helpful: shuttle q1 (slot 3) into trap 1... but slot 4 occupied, so
        // instead compare a reorder that moves q2 towards q1 against one that
        // moves it away.
        let towards = GenericSwap {
            a: SlotId(4),
            b: SlotId(5),
            kind: crate::generic_swap::GenericSwapKind::Reorder,
            weight: config.weights.inner_weight,
        };
        let away = GenericSwap {
            a: SlotId(11),
            b: SlotId(10),
            kind: crate::generic_swap::GenericSwapKind::Reorder,
            weight: config.weights.inner_weight,
        };
        let s_towards = scorer.score_swap(&p, &decay, &frontier, &[], &towards);
        let s_away = scorer.score_swap(&p, &decay, &frontier, &[], &away);
        // Moving q2 deeper into its trap (away from the shared port) does
        // not help the frontier gate; moving it is still scored consistently.
        assert!(s_towards.is_finite() && s_away.is_finite());
        assert!(s_towards >= s_away - 1.0); // sanity: both scores comparable
    }
}
