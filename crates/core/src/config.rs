//! Compiler configuration: heuristic hyper-parameters and mapping choices.

use crate::swap_schedule::SwapScheduleKind;
use serde::{Deserialize, Serialize};
use ssync_arch::WeightConfig;
use ssync_sim::{GateImplementation, NoiseModel, OperationTimes};

/// The first-level initial-mapping strategy (Sec. 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum InitialMapping {
    /// Spread qubits evenly across every trap.
    EvenDivided,
    /// Cluster qubits into as few traps as possible, reserving one space
    /// per trap for incoming ions (the paper's default for the evaluation).
    #[default]
    Gathering,
    /// Spatio-temporal-aware mapping: qubits with stronger, earlier
    /// interactions are placed closer together (Ovide et al. 2024).
    Sta,
}

impl InitialMapping {
    /// All strategies, in the order used by Fig. 12.
    pub const ALL: [InitialMapping; 3] =
        [InitialMapping::Gathering, InitialMapping::EvenDivided, InitialMapping::Sta];

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            InitialMapping::EvenDivided => "even-divided",
            InitialMapping::Gathering => "gathering",
            InitialMapping::Sta => "STA",
        }
    }
}

/// Hyper-parameters of the S-SYNC compiler.
///
/// Defaults follow Sec. 4.2: inner weight 0.001, shuttle weight 1, decay
/// rate δ = 0.001 with a 5-iteration reset, heuristic look-ahead of 8
/// layers for the intra-trap mapping score, and path truncation m = 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// Static-graph edge weights.
    pub weights: WeightConfig,
    /// Decay increment δ applied to gates whose qubits moved recently.
    pub decay_delta: f64,
    /// Number of scheduler iterations after which a qubit's decay resets.
    pub decay_reset_interval: usize,
    /// Look-ahead depth (DAG layers) for the intra-trap mapping score and
    /// the extended heuristic.
    pub lookahead_layers: usize,
    /// Maximum number of intermediate hops considered when scoring a path
    /// (the paper's m; the trap-level router generalises beyond it, but the
    /// sensitivity study keeps it configurable).
    pub path_truncation: usize,
    /// Weight α of the inter-trap interaction term in Eq. (3).
    pub alpha: f64,
    /// Weight β of the intra-trap interaction term in Eq. (3).
    pub beta: f64,
    /// First-level initial-mapping strategy.
    pub initial_mapping: InitialMapping,
    /// Two-qubit gate implementation used for timing/fidelity evaluation.
    pub gate_impl: GateImplementation,
    /// Transport-primitive times (Table 1).
    pub op_times: OperationTimes,
    /// Fidelity model (Eq. 4).
    pub noise: NoiseModel,
    /// Number of consecutive no-progress scheduler iterations before the
    /// deterministic fallback router takes over (safety net; the heuristic
    /// almost never reaches it).
    pub max_stall_iterations: usize,
    /// Bonus subtracted from a candidate's heuristic score when applying it
    /// makes a frontier gate immediately executable. This breaks the exact
    /// cancellation between a shuttle's distance gain and its edge weight
    /// in Eq. (1), letting route-completing shuttles win over no-op moves.
    pub executable_bonus: f64,
    /// Worker-thread count for batch compilation (`compile_batch`); `0`
    /// means "auto" (the machine's available parallelism). The
    /// `SSYNC_BATCH_WORKERS` environment variable overrides either.
    pub batch_workers: usize,
    /// Scoring threads used *inside* one scheduler run (parallel
    /// candidate evaluation). A positive count is used as-is — the
    /// service pool pins a budgeted value per worker through this field —
    /// while `0` ("auto") defers to the `SSYNC_SCORE_THREADS` environment
    /// variable and finally to 1 (serial). Never affects compiled output:
    /// the scheduler is bit-identical at every thread count, which is why
    /// the cache key hash and the wire codec both skip this field.
    pub scoring_threads: usize,
    /// Swap-schedule implementation used by the permutation-routing
    /// compiler (`CompilerKind::PermRoute`) to realise a blocked frontier
    /// layer's permutation wholesale. The default is the sub-quadratic
    /// production schedule; `BubbleSort` is the exact-oracle reference for
    /// ablations. Output-affecting (it changes the SWAP-gate stream), so
    /// the cache key hash includes it — but like `scoring_threads` it
    /// stays off the wire: it is a local ablation knob, and remote
    /// submissions always run the production schedule.
    pub perm_schedule: SwapScheduleKind,
    /// Enables the compile flight recorder: a bounded, preallocated ring
    /// of scheduler decision events (layers, winning candidates, stalls,
    /// shuttles, swap schedules) carried on the `CompileOutcome` next to —
    /// never inside — the golden-compared stats. Observation-only by
    /// contract: compiled output is bit-identical on or off (the
    /// `telemetry_overhead` bench enforces this), so like
    /// `scoring_threads` the flag is excluded from the cache key hash and
    /// never crosses the wire; the service pins it server-side from
    /// `--flight-recorder` / `SSYNC_FLIGHT_RECORDER`.
    pub flight_recorder: bool,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            weights: WeightConfig::default(),
            decay_delta: 0.001,
            decay_reset_interval: 5,
            lookahead_layers: 8,
            path_truncation: 2,
            alpha: 1.0,
            beta: 1.0,
            initial_mapping: InitialMapping::default(),
            gate_impl: GateImplementation::Fm,
            op_times: OperationTimes::default(),
            noise: NoiseModel::default(),
            max_stall_iterations: 48,
            executable_bonus: 2.0,
            batch_workers: 0,
            scoring_threads: 0,
            perm_schedule: SwapScheduleKind::default(),
            flight_recorder: false,
        }
    }
}

impl CompilerConfig {
    /// Returns a copy with a different initial-mapping strategy.
    pub fn with_initial_mapping(mut self, mapping: InitialMapping) -> Self {
        self.initial_mapping = mapping;
        self
    }

    /// Returns a copy with a different gate implementation.
    pub fn with_gate_impl(mut self, gate_impl: GateImplementation) -> Self {
        self.gate_impl = gate_impl;
        self
    }

    /// Returns a copy with a different decay rate δ.
    pub fn with_decay(mut self, delta: f64) -> Self {
        self.decay_delta = delta;
        self
    }

    /// Returns a copy with a different shuttle-to-inner weight ratio
    /// (Fig. 14 sensitivity sweep).
    pub fn with_weight_ratio(mut self, ratio: f64) -> Self {
        self.weights = WeightConfig::with_ratio(ratio);
        self
    }

    /// Returns a copy with an explicit batch-compilation worker count
    /// (`0` restores "auto").
    pub fn with_batch_workers(mut self, workers: usize) -> Self {
        self.batch_workers = workers;
        self
    }

    /// Returns a copy with an explicit intra-compile scoring-thread count
    /// (`0` restores "auto": `SSYNC_SCORE_THREADS`, else serial). Output
    /// is bit-identical at any value.
    pub fn with_scoring_threads(mut self, threads: usize) -> Self {
        self.scoring_threads = threads;
        self
    }

    /// Returns a copy with a different permutation-routing swap schedule
    /// (only `CompilerKind::PermRoute` reads it).
    pub fn with_perm_schedule(mut self, schedule: SwapScheduleKind) -> Self {
        self.perm_schedule = schedule;
        self
    }

    /// Returns a copy with the compile flight recorder enabled or
    /// disabled. Output is bit-identical either way.
    pub fn with_flight_recorder(mut self, enabled: bool) -> Self {
        self.flight_recorder = enabled;
        self
    }
}

/// Capacity bounds for a compile-result cache tier. `None` means
/// "unbounded" on that axis; both axes bounded means an entry is evicted
/// as soon as *either* cap is exceeded.
///
/// This lives in `ssync-core` (rather than the service crate) so every
/// cache tier — the in-process `ssync-service` result cache today, any
/// future standalone tier — shares one configuration vocabulary and the
/// same environment plumbing:
///
/// * `SSYNC_CACHE_MAX_ENTRIES` — maximum number of cached outcomes.
/// * `SSYNC_CACHE_MAX_BYTES` — approximate maximum resident bytes
///   (measured by the cache's weight function, not the allocator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBounds {
    /// Maximum number of entries, `None` for unbounded.
    pub max_entries: Option<usize>,
    /// Approximate maximum resident bytes, `None` for unbounded.
    pub max_bytes: Option<usize>,
}

impl CacheBounds {
    /// No bounds on either axis (the historical unbounded-cache behaviour).
    pub const UNBOUNDED: CacheBounds = CacheBounds { max_entries: None, max_bytes: None };

    /// Bounds with an entry cap only.
    pub fn with_max_entries(entries: usize) -> Self {
        CacheBounds { max_entries: Some(entries), max_bytes: None }
    }

    /// Bounds with a byte cap only.
    pub fn with_max_bytes(bytes: usize) -> Self {
        CacheBounds { max_entries: None, max_bytes: Some(bytes) }
    }

    /// Reads the bounds from `SSYNC_CACHE_MAX_ENTRIES` /
    /// `SSYNC_CACHE_MAX_BYTES`. Missing or unparsable variables leave the
    /// axis unbounded; `0` also means unbounded (so a wrapper script can
    /// always set the variable).
    pub fn from_env() -> Self {
        fn axis(var: &str) -> Option<usize> {
            std::env::var(var).ok()?.trim().parse::<usize>().ok().filter(|&n| n > 0)
        }
        CacheBounds {
            max_entries: axis("SSYNC_CACHE_MAX_ENTRIES"),
            max_bytes: axis("SSYNC_CACHE_MAX_BYTES"),
        }
    }

    /// `true` when neither axis is bounded.
    pub fn is_unbounded(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_bounds_builders_and_unbounded() {
        assert!(CacheBounds::UNBOUNDED.is_unbounded());
        assert!(CacheBounds::default().is_unbounded());
        let entries = CacheBounds::with_max_entries(16);
        assert_eq!(entries.max_entries, Some(16));
        assert!(!entries.is_unbounded());
        let bytes = CacheBounds::with_max_bytes(1 << 20);
        assert_eq!(bytes.max_bytes, Some(1 << 20));
        assert!(!bytes.is_unbounded());
    }

    #[test]
    fn defaults_match_paper_hyperparameters() {
        let c = CompilerConfig::default();
        assert_eq!(c.weights.inner_weight, 0.001);
        assert_eq!(c.weights.shuttle_weight, 1.0);
        assert_eq!(c.decay_delta, 0.001);
        assert_eq!(c.decay_reset_interval, 5);
        assert_eq!(c.lookahead_layers, 8);
        assert_eq!(c.path_truncation, 2);
        assert_eq!(c.initial_mapping, InitialMapping::Gathering);
        assert_eq!(c.gate_impl, GateImplementation::Fm);
    }

    #[test]
    fn builder_style_overrides() {
        let c = CompilerConfig::default()
            .with_initial_mapping(InitialMapping::Sta)
            .with_gate_impl(GateImplementation::Am2)
            .with_decay(0.01)
            .with_weight_ratio(100.0);
        assert_eq!(c.initial_mapping, InitialMapping::Sta);
        assert_eq!(c.gate_impl, GateImplementation::Am2);
        assert_eq!(c.decay_delta, 0.01);
        assert!((c.weights.shuttle_weight / c.weights.inner_weight - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mapping_labels() {
        assert_eq!(InitialMapping::Gathering.label(), "gathering");
        assert_eq!(InitialMapping::EvenDivided.label(), "even-divided");
        assert_eq!(InitialMapping::Sta.label(), "STA");
        assert_eq!(InitialMapping::ALL.len(), 3);
    }
}
