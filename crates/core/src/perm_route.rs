//! Permutation-level routing: layer-at-a-time swap/shuttle synthesis.
//!
//! Where the greedy baselines and the S-SYNC scheduler insert movement
//! per-gate, this compiler treats every *blocked frontier layer* as one
//! rearrangement problem. Frontier gates of a dependency DAG touch
//! pairwise-disjoint qubits, so the layer defines a target placement
//! (every pair co-trapped and adjacent); the difference between the
//! current and target chain orders is a permutation, realised wholesale
//! by a data-independent [`SwapSchedule`](crate::SwapSchedule) comparator
//! network instead of one greedy swap at a time.
//!
//! Each blocked layer runs three phases:
//!
//! 1. **Plan** — every frontier gate picks a meeting trap minimising the
//!    Eq. 2 cost terms: weighted shuttle distance (router hops ×
//!    `shuttle_weight`), projected trap occupancy (× `inner_weight`) and
//!    a full-trap penalty, with planned occupancies threaded through so
//!    later gates see earlier reservations.
//! 2. **Shuttle** — gates realise cheapest-first: both operands move to
//!    the meeting trap through the shared placement
//!    [`Mechanics`](crate::mechanics::Mechanics) (multi-hop shuttles,
//!    cascaded space-making).
//! 3. **Reorder** — per meeting trap, spaces compact to the chain's right
//!    end, the layer-to-layer permutation (pairs adjacent, bystanders in
//!    relative order) feeds the configured
//!    [`SwapScheduleKind`](crate::SwapScheduleKind), and exactly the
//!    selected comparators are emitted as SWAP gates.
//!
//! The comparator schedule is data-independent and every sorting network
//! leaves the chain in the same target order, so the end-of-layer
//! placement is bit-identical across schedule kinds — only the SWAP-gate
//! stream differs. The `perm_route_props` battery pins that equivalence
//! against the bubble-sort oracle.

use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::mechanics::Mechanics;
use crate::CompileOutcome;
use ssync_arch::{Device, Placement, QccdTopology, SlotGraph, TrapId, TrapRouter, WeightConfig};
use ssync_circuit::{Circuit, DependencyDag, NodeId, Qubit};
use ssync_sim::{CompiledProgram, ExecutionTracer, ScheduledOp};
use ssync_telemetry::{FlightEvent, FlightRecorder, SWAP_SCHEDULE_BUBBLE, SWAP_SCHEDULE_RECURSIVE};
use std::sync::Arc;
use std::time::Instant;

/// Routing slots kept free per trap by the initial placement when the
/// device has room (the Dai-style single-slot headroom: enough for an
/// incoming shuttle without starving capacity).
const RESERVED_SLOTS: usize = 1;

/// Consecutive blocked-layer rounds that may pass without a single planned
/// gate becoming co-trapped before the compiler declares a stall.
const MAX_BARREN_ROUNDS: usize = 32;

/// Weighted cost of one intra-trap SWAP between ions `ion_distance` apart
/// in a chain of `chain_len` ions (Eq. 2's intra-trap term: longer chains
/// and wider separations cost more).
///
/// Strictly monotone in both `ion_distance` and `chain_len` — pinned by
/// the cost-monotonicity checks of the permutation-routing battery.
pub fn swap_cost(weights: WeightConfig, chain_len: usize, ion_distance: usize) -> f64 {
    weights.inner_weight * ion_distance as f64 * (1.0 + chain_len as f64)
}

/// Weighted cost of meeting a two-qubit gate in a candidate trap:
/// `hops_a`/`hops_b` router hops for the two operands (× `shuttle_weight`),
/// the trap's projected occupancy *after* both arrive (× `inner_weight`),
/// plus a `shuttle_weight`-sized penalty when the trap would fill
/// completely (Eq. 2's full-trap `Pen` term).
///
/// Strictly monotone in the hop counts and in the projected occupancy.
pub fn meeting_cost(
    weights: WeightConfig,
    hops_a: usize,
    hops_b: usize,
    occupancy_after: usize,
    capacity: usize,
) -> f64 {
    let shuttles = weights.shuttle_weight * (hops_a + hops_b) as f64;
    let congestion = weights.inner_weight * occupancy_after as f64;
    let full_penalty = if occupancy_after >= capacity { weights.shuttle_weight } else { 0.0 };
    shuttles + congestion + full_penalty
}

/// One frontier gate with its chosen meeting trap.
#[derive(Debug, Clone, Copy)]
struct PlannedGate {
    a: Qubit,
    b: Qubit,
    trap: TrapId,
    cost: f64,
}

/// The permutation-routing compiler (`CompilerKind::PermRoute` in
/// `ssync-baselines`): blocked frontier layers are realised wholesale via
/// a sub-quadratic swap schedule with Eq. 2 cost-weighted swap selection.
#[derive(Debug, Clone)]
pub struct PermRouteCompiler {
    config: CompilerConfig,
}

impl PermRouteCompiler {
    /// Creates a compiler with the given configuration. The schedule kind
    /// comes from [`CompilerConfig::perm_schedule`].
    pub fn new(config: CompilerConfig) -> Self {
        PermRouteCompiler { config }
    }

    /// The evaluation configuration (weights, schedule kind, noise).
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Compiles `circuit` for `topology`, building a throw-away
    /// [`Device`]; sweeps should build the device once and call
    /// [`PermRouteCompiler::compile_on`].
    ///
    /// # Errors
    ///
    /// See [`PermRouteCompiler::compile_on`].
    pub fn compile(
        &self,
        circuit: &Circuit,
        topology: &QccdTopology,
    ) -> Result<CompileOutcome, CompileError> {
        let device = Device::build(topology.clone(), self.config.weights);
        self.compile_on(&device, circuit)
    }

    /// Compiles `circuit` against a prepared, shared `device` artifact.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::DeviceTooSmall`] when the device cannot
    /// hold every qubit plus a free slot,
    /// [`CompileError::DisconnectedTopology`] for unreachable traps, and
    /// [`CompileError::SchedulingStalled`] if layer realisation stops
    /// making progress.
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than this
    /// compiler's configuration.
    pub fn compile_on(
        &self,
        device: &Device,
        circuit: &Circuit,
    ) -> Result<CompileOutcome, CompileError> {
        self.compile_on_with_order(device, circuit, None)
    }

    /// [`PermRouteCompiler::compile_on`] with an optionally precomputed
    /// first-use qubit order ([`Circuit::first_use_order`]); passing
    /// `None` (or the correct order) is behaviourally identical.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PermRouteCompiler::compile_on`].
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than this
    /// compiler's configuration, or if `order` is not a permutation of the
    /// circuit's qubits.
    pub fn compile_on_with_order(
        &self,
        device: &Device,
        circuit: &Circuit,
        order: Option<&[Qubit]>,
    ) -> Result<CompileOutcome, CompileError> {
        assert!(
            device.weights() == self.config.weights,
            "device was built with different edge weights than the perm-route config"
        );
        let topology = device.topology();
        let slots = topology.total_capacity();
        if slots < circuit.num_qubits() + 1 {
            return Err(CompileError::DeviceTooSmall { qubits: circuit.num_qubits(), slots });
        }
        if !device.is_connected() {
            return Err(CompileError::DisconnectedTopology);
        }

        let start = Instant::now();
        let graph = device.graph();
        let router = device.router();
        let mechanics = Mechanics::new(graph, router);
        let mut placement = match order {
            Some(order) => {
                assert_eq!(order.len(), circuit.num_qubits(), "order must cover every qubit");
                self.initial_placement_with_order(circuit, graph, order)
            }
            None => self.initial_placement_with_order(circuit, graph, &circuit.first_use_order()),
        };
        let mut program = CompiledProgram::new(circuit.num_qubits(), topology.num_traps());
        for gate in circuit.iter() {
            if !gate.is_two_qubit() {
                program.push(ScheduledOp::SingleQubitGate { qubit: gate.qubits()[0] });
            }
        }

        let mut dag = DependencyDag::from_circuit(circuit);
        let mut recorder = self.config.flight_recorder.then(FlightRecorder::with_default_capacity);
        let mut rounds = 0usize;
        let mut barren_rounds = 0usize;
        let budget = 10_000 + 100 * dag.len();
        let mut drain_scratch: Vec<NodeId> = Vec::new();
        let mut executed: Vec<NodeId> = Vec::new();
        while !dag.is_complete() {
            rounds += 1;
            if rounds > budget {
                return Err(CompileError::SchedulingStalled { remaining_gates: dag.remaining() });
            }
            // Execute everything already co-located.
            let placement_ref = &placement;
            dag.drain_executable_into(
                |gate| {
                    let Some((a, b)) = gate.two_qubit_pair() else { return false };
                    match (placement_ref.slot_of(a), placement_ref.slot_of(b)) {
                        (Some(sa), Some(sb)) => graph.same_trap(sa, sb),
                        _ => false,
                    }
                },
                &mut drain_scratch,
                &mut executed,
            );
            for id in &executed {
                let (a, b) = dag.gate(*id).two_qubit_pair().expect("two-qubit gate");
                mechanics.emit_two_qubit_gate(&placement, &mut program, a, b);
            }
            if dag.is_complete() {
                break;
            }
            if !executed.is_empty() {
                continue;
            }

            // Every frontier gate is blocked: route the whole layer.
            if let Some(rec) = recorder.as_mut() {
                rec.record(FlightEvent::LayerOpened {
                    layer: rounds as u64,
                    ready_gates: dag.frontier().len() as u64,
                });
            }
            let realized = self.route_layer(
                &mechanics,
                &mut placement,
                &mut program,
                &dag,
                rounds as u64,
                recorder.as_mut(),
            )?;
            if let Some(rec) = recorder.as_mut() {
                rec.record(FlightEvent::LayerClosed {
                    layer: rounds as u64,
                    executed: realized as u64,
                });
            }
            if realized == 0 {
                barren_rounds += 1;
                if barren_rounds > MAX_BARREN_ROUNDS {
                    return Err(CompileError::SchedulingStalled {
                        remaining_gates: dag.remaining(),
                    });
                }
            } else {
                barren_rounds = 0;
            }
        }

        let compile_time = start.elapsed();
        let tracer = ExecutionTracer {
            gate_impl: self.config.gate_impl,
            op_times: self.config.op_times,
            noise: self.config.noise,
        };
        let report = tracer.evaluate(&program);
        Ok(CompileOutcome::from_parts(program, report, placement, compile_time)
            .with_flight_recording(recorder.map(|r| Arc::new(r.into_recording()))))
    }

    /// Sequential first-use packing with [`RESERVED_SLOTS`] routing slots
    /// per trap when the device has room (same scheme as the greedy
    /// engine, so the two strategies differ only in routing).
    fn initial_placement_with_order(
        &self,
        circuit: &Circuit,
        graph: &SlotGraph,
        order: &[Qubit],
    ) -> Placement {
        let topology = graph.topology();
        let n = circuit.num_qubits();
        let mut placement = Placement::new(topology, n);

        let total: usize = topology.total_capacity();
        let soft_caps: Vec<usize> = topology
            .traps()
            .iter()
            .map(|t| {
                if total >= n + RESERVED_SLOTS * topology.num_traps() {
                    t.capacity().saturating_sub(RESERVED_SLOTS)
                } else {
                    t.capacity().saturating_sub(1).max(1)
                }
            })
            .collect();

        let mut trap = 0usize;
        let mut placed_in_trap = 0usize;
        for &q in order {
            while trap < topology.num_traps()
                && (placed_in_trap >= soft_caps[trap]
                    || placed_in_trap >= topology.traps()[trap].capacity())
            {
                trap += 1;
                placed_in_trap = 0;
            }
            let t = if trap < topology.num_traps() {
                trap
            } else {
                (0..topology.num_traps())
                    .find(|&t| {
                        placement.trap_occupancy(topology.traps()[t].id())
                            < topology.traps()[t].capacity()
                    })
                    .expect("device has room for every qubit")
            };
            let trap_ref = &topology.traps()[t];
            let slot = trap_ref
                .slots()
                .into_iter()
                .find(|&s| placement.is_space(s))
                .expect("trap below capacity has a free slot");
            placement.place(q, slot);
            if t == trap {
                placed_in_trap += 1;
            }
        }
        placement
    }

    /// Routes one blocked frontier layer: plan meeting traps, shuttle the
    /// operands in (cheapest plan first), then realise the intra-trap
    /// permutation per meeting trap through the configured swap schedule.
    /// Returns the number of planned gates whose operands ended the round
    /// co-trapped.
    fn route_layer(
        &self,
        mechanics: &Mechanics<'_>,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        dag: &DependencyDag,
        round: u64,
        mut recorder: Option<&mut FlightRecorder>,
    ) -> Result<usize, CompileError> {
        let graph = mechanics.graph();
        let router = mechanics.router();
        let topology = graph.topology();

        // Frontier gates touch pairwise-disjoint qubits; collect them in
        // frontier order (deterministic) and protect all of them from
        // space-making evictions while the layer is in flight.
        let layer: Vec<(NodeId, Qubit, Qubit)> = dag
            .frontier()
            .iter()
            .filter_map(|&id| dag.gate(id).two_qubit_pair().map(|(a, b)| (id, a, b)))
            .collect();
        let protect: Vec<Qubit> = layer.iter().flat_map(|&(_, a, b)| [a, b]).collect();

        let mut plan = self.plan_layer(&layer, placement, router, topology)?;
        // Cost-weighted selection order: realise the cheapest rearrangement
        // first so expensive moves see the freshest occupancy. Ties break
        // on frontier position via the stable sort.
        plan.sort_by(|x, y| x.cost.total_cmp(&y.cost));

        let mut realized = 0usize;
        for gate in &plan {
            // Source trap captured before the move so the shuttle event can
            // name it; the lookup only happens when the recorder is live.
            let from_trap = if recorder.is_some() { placement.trap_of(gate.a) } else { None };
            if self.shuttle_pair_to(mechanics, placement, program, gate, &protect)
                && placement.trap_of(gate.a) == placement.trap_of(gate.b)
            {
                realized += 1;
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.record(FlightEvent::CandidateChosen {
                        layer: round,
                        candidate: gate.trap.index() as u64,
                        score_bits: gate.cost.to_bits(),
                        // The layer planner keeps only the winning meeting
                        // trap per gate, so no runner-up margin exists.
                        margin_bits: f64::NAN.to_bits(),
                    });
                    if let Some(src) = from_trap {
                        if src != gate.trap {
                            rec.record(FlightEvent::Shuttle {
                                qubit: u64::from(gate.a.0),
                                from_trap: src.index() as u64,
                                to_trap: gate.trap.index() as u64,
                                junctions: router.hops(src, gate.trap) as u64,
                                source_chain_len: placement.trap_occupancy(src) as u64,
                                dest_chain_len: placement.trap_occupancy(gate.trap) as u64,
                            });
                        }
                    }
                }
            }
        }

        // Wholesale intra-trap reorder per meeting trap, ascending trap id.
        let mut traps: Vec<TrapId> = plan
            .iter()
            .filter(|g| {
                placement.trap_of(g.a).is_some() && placement.trap_of(g.a) == placement.trap_of(g.b)
            })
            .map(|g| placement.trap_of(g.a).expect("checked placed"))
            .collect();
        traps.sort_by_key(|t| t.index());
        traps.dedup();
        for trap in traps {
            let pairs: Vec<(Qubit, Qubit)> = plan
                .iter()
                .filter(|g| {
                    placement.trap_of(g.a) == Some(trap) && placement.trap_of(g.b) == Some(trap)
                })
                .map(|g| (g.a, g.b))
                .collect();
            self.reorder_trap(mechanics, placement, program, trap, &pairs, recorder.as_deref_mut());
        }
        Ok(realized)
    }

    /// Phase 1: pick a meeting trap per frontier gate by minimum
    /// [`meeting_cost`], threading planned occupancies so later gates see
    /// earlier reservations. Gates whose operands already share a trap
    /// cannot appear here (the drain loop would have executed them).
    fn plan_layer(
        &self,
        layer: &[(NodeId, Qubit, Qubit)],
        placement: &Placement,
        router: &TrapRouter,
        topology: &QccdTopology,
    ) -> Result<Vec<PlannedGate>, CompileError> {
        let weights = self.config.weights;
        let mut planned_occ: Vec<usize> =
            topology.traps().iter().map(|t| placement.trap_occupancy(t.id())).collect();
        let mut plan = Vec::with_capacity(layer.len());
        for &(_, a, b) in layer {
            let ta = placement.trap_of(a).expect("frontier qubit placed");
            let tb = placement.trap_of(b).expect("frontier qubit placed");
            // The pair leaves its current traps before entering the
            // meeting trap, so release both reservations first.
            planned_occ[ta.index()] -= 1;
            planned_occ[tb.index()] -= 1;

            let cost_of = |t: &ssync_arch::Trap| {
                let idx = t.id().index();
                let arrivals =
                    usize::from(t.id() != ta) + usize::from(t.id() != tb) + planned_occ[idx];
                // Shuttle + occupancy terms of Eq. 2, plus the expected
                // intra-trap SWAP that places the pair adjacent — priced by
                // the chain length the trap will have once both arrive.
                meeting_cost(
                    weights,
                    router.hops(ta, t.id()),
                    router.hops(tb, t.id()),
                    arrivals,
                    t.capacity(),
                ) + swap_cost(weights, arrivals, 1)
            };
            // First pass: traps that can hold the pair within planned
            // capacity. Fallback: any trap physically large enough —
            // space-making during realisation creates the room.
            let feasible = topology
                .traps()
                .iter()
                .filter(|t| {
                    let idx = t.id().index();
                    let arrivals =
                        usize::from(t.id() != ta) + usize::from(t.id() != tb) + planned_occ[idx];
                    arrivals <= t.capacity()
                })
                .min_by(|x, y| {
                    cost_of(x).total_cmp(&cost_of(y)).then(x.id().index().cmp(&y.id().index()))
                });
            let chosen = match feasible {
                Some(t) => t,
                None => topology
                    .traps()
                    .iter()
                    .filter(|t| t.capacity() >= 2)
                    .min_by(|x, y| {
                        cost_of(x).total_cmp(&cost_of(y)).then(x.id().index().cmp(&y.id().index()))
                    })
                    .ok_or(CompileError::SchedulingStalled { remaining_gates: layer.len() })?,
            };
            let cost = cost_of(chosen);
            planned_occ[chosen.id().index()] += 2;
            plan.push(PlannedGate { a, b, trap: chosen.id(), cost });
        }
        Ok(plan)
    }

    /// Phase 2: move both operands of `gate` into its meeting trap,
    /// making space ahead of each move. Returns `false` if either move
    /// failed (the gate is re-planned next round).
    fn shuttle_pair_to(
        &self,
        mechanics: &Mechanics<'_>,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        gate: &PlannedGate,
        protect: &[Qubit],
    ) -> bool {
        for q in [gate.a, gate.b] {
            if placement.trap_of(q) == Some(gate.trap) {
                continue;
            }
            if placement.trap_free_slots(gate.trap) == 0
                && !mechanics.make_space(placement, program, gate.trap, 1, protect)
            {
                return false;
            }
            if !mechanics.move_qubit_to_trap(placement, program, q, gate.trap) {
                return false;
            }
        }
        true
    }

    /// Phase 3: compact the trap's spaces to the right end, derive the
    /// layer-to-layer permutation (pairs adjacent at the earlier operand's
    /// rank, bystanders in relative order) and emit exactly the selected
    /// comparators of the configured swap schedule as SWAP gates.
    fn reorder_trap(
        &self,
        mechanics: &Mechanics<'_>,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        trap: TrapId,
        pairs: &[(Qubit, Qubit)],
        recorder: Option<&mut FlightRecorder>,
    ) {
        let graph = mechanics.graph();
        let topology = graph.topology();
        let trap_ref = topology.trap(trap);
        let occ = placement.trap_occupancy(trap);
        if occ < 2 {
            return;
        }

        // Compact: walk left to right, pulling each next ion into the
        // lowest open position so positions 0..occ hold the chain order.
        for target_pos in 0..occ {
            let slot = trap_ref.slot_at(target_pos);
            if placement.is_space(slot) {
                let src = (target_pos + 1..trap_ref.capacity())
                    .find(|&p| placement.occupant(trap_ref.slot_at(p)).is_some())
                    .expect("occupancy guarantees an ion to the right");
                placement.swap_slots(trap_ref.slot_at(src), slot);
                program.push(ScheduledOp::IonReorder { trap, steps: src - target_pos });
            }
        }

        // Current chain order and ranks.
        let chain: Vec<Qubit> =
            (0..occ).map(|p| placement.occupant(trap_ref.slot_at(p)).expect("compacted")).collect();
        let rank_of = |q: Qubit| chain.iter().position(|&c| c == q).expect("qubit in trap");

        // Target order: each pair becomes one unit anchored at its earlier
        // operand's rank (operands ordered by rank, so the pair crosses no
        // further than it must); bystanders are single units at their own
        // rank. Units concatenate in anchor order.
        let mut units: Vec<(usize, Vec<Qubit>)> = Vec::new();
        let mut in_pair = vec![false; occ];
        for &(a, b) in pairs {
            let (ra, rb) = (rank_of(a), rank_of(b));
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            in_pair[lo] = true;
            in_pair[hi] = true;
            units.push((lo, vec![chain[lo], chain[hi]]));
        }
        for (rank, &q) in chain.iter().enumerate() {
            if !in_pair[rank] {
                units.push((rank, vec![q]));
            }
        }
        units.sort_by_key(|&(anchor, _)| anchor);
        let target: Vec<Qubit> = units.into_iter().flat_map(|(_, qs)| qs).collect();

        // permutation[rank] = target index of the ion currently at `rank`.
        let mut permutation: Vec<usize> = vec![0; occ];
        for (target_idx, &q) in target.iter().enumerate() {
            permutation[rank_of(q)] = target_idx;
        }

        let schedule = self.config.perm_schedule.permutation_to_swap_schedule(&mut permutation);
        let emitted = schedule.len() as u64;
        let mut selected_count = 0u64;
        for (selected, i, j) in schedule {
            if !selected {
                continue;
            }
            selected_count += 1;
            let (si, sj) = (trap_ref.slot_at(i), trap_ref.slot_at(j));
            let a = placement.occupant(si).expect("compacted prefix stays occupied");
            let b = placement.occupant(sj).expect("compacted prefix stays occupied");
            program.push(ScheduledOp::SwapGate { a, b, trap, chain_len: occ, ion_distance: j - i });
            placement.swap_slots(si, sj);
        }
        if let Some(rec) = recorder {
            rec.record(FlightEvent::SwapSchedule {
                trap: trap.index() as u64,
                kind: match self.config.perm_schedule {
                    crate::SwapScheduleKind::BubbleSort => SWAP_SCHEDULE_BUBBLE,
                    crate::SwapScheduleKind::RecursiveSplitTwo => SWAP_SCHEDULE_RECURSIVE,
                },
                emitted,
                selected: selected_count,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swap_schedule::SwapScheduleKind;
    use ssync_circuit::generators::{qft, random_two_qubit_circuit};

    #[test]
    fn schedules_every_gate_and_validates() {
        let circuit = qft(14);
        let topo = QccdTopology::grid(2, 2, 6);
        for kind in SwapScheduleKind::ALL {
            let config = CompilerConfig::default().with_perm_schedule(kind);
            let outcome = PermRouteCompiler::new(config).compile(&circuit, &topo).unwrap();
            assert_eq!(
                outcome.counts().two_qubit_gates,
                circuit.two_qubit_gate_count(),
                "{kind:?}"
            );
            outcome.final_placement().validate().unwrap();
        }
    }

    #[test]
    fn schedule_kinds_agree_on_everything_but_the_swap_stream() {
        let circuit = random_two_qubit_circuit(12, 60, 3);
        let topo = QccdTopology::grid(2, 2, 5);
        let config = CompilerConfig::default();
        let device = Device::build(topo, config.weights);
        let bubble =
            PermRouteCompiler::new(config.with_perm_schedule(SwapScheduleKind::BubbleSort))
                .compile_on(&device, &circuit)
                .unwrap();
        let recursive =
            PermRouteCompiler::new(config.with_perm_schedule(SwapScheduleKind::RecursiveSplitTwo))
                .compile_on(&device, &circuit)
                .unwrap();
        assert_eq!(bubble.final_placement(), recursive.final_placement());
        let strip = |ops: &[ScheduledOp]| -> Vec<ScheduledOp> {
            ops.iter().filter(|op| !matches!(op, ScheduledOp::SwapGate { .. })).copied().collect()
        };
        assert_eq!(strip(bubble.program().ops()), strip(recursive.program().ops()));
        assert_eq!(bubble.counts().shuttles, recursive.counts().shuttles);
    }

    #[test]
    fn precomputed_order_matches_internal_sort() {
        let circuit = qft(14);
        let config = CompilerConfig::default();
        let device = Device::build(QccdTopology::grid(2, 2, 6), config.weights);
        let order = circuit.first_use_order();
        let compiler = PermRouteCompiler::new(config);
        let plain = compiler.compile_on(&device, &circuit).unwrap();
        let cached = compiler.compile_on_with_order(&device, &circuit, Some(&order)).unwrap();
        assert_eq!(plain.program().ops(), cached.program().ops());
        assert_eq!(plain.final_placement(), cached.final_placement());
    }

    #[test]
    fn compiles_on_a_tight_device() {
        // 15 qubits into 16 slots: one global space, every layer relies on
        // cascaded space-making.
        let circuit = random_two_qubit_circuit(15, 80, 11);
        let topo = QccdTopology::grid(2, 2, 4);
        let outcome =
            PermRouteCompiler::new(CompilerConfig::default()).compile(&circuit, &topo).unwrap();
        assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
        outcome.final_placement().validate().unwrap();
    }

    #[test]
    fn too_small_device_is_rejected() {
        let circuit = qft(12);
        let err = PermRouteCompiler::new(CompilerConfig::default())
            .compile(&circuit, &QccdTopology::linear(2, 6))
            .unwrap_err();
        assert!(matches!(err, CompileError::DeviceTooSmall { .. }));
    }

    #[test]
    fn flight_recorder_is_observation_only() {
        let circuit = random_two_qubit_circuit(12, 60, 7);
        let topo = QccdTopology::grid(2, 2, 5);
        let config = CompilerConfig::default();
        let device = Device::build(topo, config.weights);
        let plain = PermRouteCompiler::new(config).compile_on(&device, &circuit).unwrap();
        let recorded = PermRouteCompiler::new(config.with_flight_recorder(true))
            .compile_on(&device, &circuit)
            .unwrap();

        // Bit-identical output: the recorder observes, it never steers.
        assert_eq!(plain.program().ops(), recorded.program().ops());
        assert_eq!(plain.final_placement(), recorded.final_placement());

        assert!(plain.flight_recording().is_none(), "recorder off must not record");
        let recording = recorded.flight_recording().expect("recorder on must record");
        assert!(!recording.events.is_empty());
        let mut layers = 0usize;
        let mut schedules = 0usize;
        for event in &recording.events {
            match event {
                FlightEvent::LayerOpened { .. } => layers += 1,
                FlightEvent::SwapSchedule { emitted, selected, .. } => {
                    schedules += 1;
                    assert!(selected <= emitted, "cannot select more comparators than emitted");
                }
                _ => {}
            }
        }
        assert!(layers > 0, "blocked layers must log LayerOpened events");
        assert!(schedules > 0, "trap reorders must log SwapSchedule events");
    }

    #[test]
    fn swap_cost_is_monotone() {
        let w = WeightConfig::default();
        assert!(swap_cost(w, 8, 2) > swap_cost(w, 8, 1));
        assert!(swap_cost(w, 9, 2) > swap_cost(w, 8, 2));
    }

    #[test]
    fn meeting_cost_is_monotone_and_penalises_full_traps() {
        let w = WeightConfig::default();
        assert!(meeting_cost(w, 2, 1, 4, 8) > meeting_cost(w, 1, 1, 4, 8));
        assert!(meeting_cost(w, 1, 2, 4, 8) > meeting_cost(w, 1, 1, 4, 8));
        assert!(meeting_cost(w, 1, 1, 5, 8) > meeting_cost(w, 1, 1, 4, 8));
        assert!(
            meeting_cost(w, 1, 1, 8, 8) - meeting_cost(w, 1, 1, 7, 8)
                > meeting_cost(w, 1, 1, 7, 8) - meeting_cost(w, 1, 1, 6, 8)
        );
    }
}
