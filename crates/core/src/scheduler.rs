//! The generic-swap based shuttling scheduler (Algorithm 1 of the paper).

use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::generic_swap::{GenericSwap, GenericSwapKind};
use crate::heuristic::{DecayTracker, HeuristicScorer};
use crate::mechanics::Mechanics;
use ssync_arch::{Placement, SlotGraph, SlotId, TrapId, TrapRouter};
use ssync_circuit::{Circuit, DependencyDag, Gate};
use ssync_sim::{CompiledProgram, ScheduledOp};
use std::collections::{HashSet, VecDeque};

/// Statistics the scheduler collects about its own search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Scheduler iterations (candidate-selection rounds).
    pub iterations: usize,
    /// Generic swaps applied through the heuristic search.
    pub heuristic_swaps: usize,
    /// Gates routed by the deterministic fallback (should stay near zero).
    pub fallback_routed_gates: usize,
}

/// The generic-swap scheduler: executes every two-qubit gate of a circuit
/// on a QCCD device, inserting SWAP gates, reorders and shuttles chosen by
/// the heuristic of Eqs. (1)–(2).
#[derive(Debug)]
pub struct Scheduler<'a> {
    graph: &'a SlotGraph,
    router: &'a TrapRouter,
    config: &'a CompilerConfig,
    stats: SchedulerStats,
}

impl<'a> Scheduler<'a> {
    /// Creates a scheduler over a prepared device graph and router.
    pub fn new(graph: &'a SlotGraph, router: &'a TrapRouter, config: &'a CompilerConfig) -> Self {
        Scheduler { graph, router, config, stats: SchedulerStats::default() }
    }

    /// Search statistics of the last [`Scheduler::run`] call.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Runs Algorithm 1: schedules every two-qubit gate of `circuit`
    /// starting from `placement` (which must already place every program
    /// qubit), appending the generated hardware operations to a fresh
    /// [`CompiledProgram`].
    ///
    /// Single-qubit gates are emitted up-front: they never constrain
    /// routing and only contribute (near-unity) fidelity.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::SchedulingStalled`] if the iteration budget
    /// is exhausted, which indicates an internal error rather than an
    /// expected user-facing failure.
    pub fn run(
        &mut self,
        circuit: &Circuit,
        mut placement: Placement,
    ) -> Result<(CompiledProgram, Placement), CompileError> {
        self.stats = SchedulerStats::default();
        let mut program =
            CompiledProgram::new(circuit.num_qubits(), self.graph.topology().num_traps());
        for gate in circuit.iter() {
            if !gate.is_two_qubit() {
                let q = gate.qubits()[0];
                program.push(ScheduledOp::SingleQubitGate { qubit: q });
            }
        }

        let mut dag = DependencyDag::from_circuit(circuit);
        let mechanics = Mechanics::new(self.graph, self.router);
        let scorer = HeuristicScorer::new(self.graph, self.router, self.config);
        let mut decay = DecayTracker::new(
            circuit.num_qubits(),
            self.config.decay_delta,
            self.config.decay_reset_interval,
        );
        let mut recent_swaps: VecDeque<(SlotId, SlotId)> = VecDeque::new();
        let mut stall = 0usize;
        let budget = 10_000 + 400 * dag.len();

        while !dag.is_complete() {
            self.stats.iterations += 1;
            if self.stats.iterations > budget {
                return Err(CompileError::SchedulingStalled { remaining_gates: dag.remaining() });
            }

            // Step 4-10: execute every frontier gate whose qubits share a trap.
            let executed = self.execute_ready(&mut dag, &mut placement, &mut program, &mechanics);
            if executed > 0 {
                stall = 0;
                continue;
            }
            if dag.is_complete() {
                break;
            }

            // Step 11: gather the candidate generic swaps near the frontier.
            let frontier: Vec<Gate> = dag.frontier().iter().map(|&id| dag.gate(id)).collect();
            // Extended look-ahead window: upcoming gates beyond the frontier.
            let lookahead: Vec<Gate> = dag
                .lookahead(self.config.lookahead_layers)
                .into_iter()
                .skip(frontier.len())
                .collect();
            let relevant = self.relevant_traps(&placement, &frontier);
            let mut candidates = self.candidates(&placement, &relevant, &recent_swaps);
            if candidates.is_empty() {
                // Allow undoing recent swaps rather than stalling outright.
                candidates = self.candidates(&placement, &relevant, &VecDeque::new());
            }

            let mut applied = false;
            if !candidates.is_empty() {
                // Steps 12-18: score each candidate, apply the cheapest.
                let mut best: Option<(f64, GenericSwap)> = None;
                for swap in candidates {
                    let score =
                        scorer.score_swap(&placement, &decay, &frontier, &lookahead, &swap);
                    let better = match best {
                        None => true,
                        Some((b, _)) => score < b - 1e-12,
                    };
                    if better {
                        best = Some((score, swap));
                    }
                }
                if let Some((_, swap)) = best {
                    self.apply_swap(&swap, &mut placement, &mut program, &mut decay, &mechanics);
                    push_recent(&mut recent_swaps, (swap.a, swap.b));
                    self.stats.heuristic_swaps += 1;
                    applied = true;
                }
            }

            decay.tick();
            stall += 1;
            if !applied || stall > self.config.max_stall_iterations {
                // Safety net: route the cheapest frontier gate directly.
                let gate = frontier
                    .iter()
                    .min_by(|a, b| {
                        scorer
                            .gate_score(&placement, a)
                            .partial_cmp(&scorer.gate_score(&placement, b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .copied()
                    .expect("frontier is non-empty while the DAG is incomplete");
                let (q1, q2) = gate.two_qubit_pair().expect("frontier gates are two-qubit");
                let dest = placement.trap_of(q2).expect("qubit placed");
                if placement.trap_free_slots(dest) == 0 {
                    mechanics.make_space(&mut placement, &mut program, dest, 1, &[q1, q2]);
                }
                let dest = placement.trap_of(q2).expect("qubit placed");
                if !mechanics.move_qubit_to_trap(&mut placement, &mut program, q1, dest) {
                    return Err(CompileError::SchedulingStalled {
                        remaining_gates: dag.remaining(),
                    });
                }
                self.stats.fallback_routed_gates += 1;
                stall = 0;
                recent_swaps.clear();
            }
        }

        Ok((program, placement))
    }

    /// Executes every currently executable frontier gate; returns how many.
    fn execute_ready(
        &self,
        dag: &mut DependencyDag,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        mechanics: &Mechanics<'_>,
    ) -> usize {
        let placement_ref = &*placement;
        let graph = self.graph;
        let ids = dag.drain_executable(|gate| {
            let Some((a, b)) = gate.two_qubit_pair() else { return false };
            match (placement_ref.slot_of(a), placement_ref.slot_of(b)) {
                (Some(sa), Some(sb)) => graph.same_trap(sa, sb),
                _ => false,
            }
        });
        for id in &ids {
            let gate = dag.gate(*id);
            let (a, b) = gate.two_qubit_pair().expect("two-qubit gate");
            mechanics.emit_two_qubit_gate(placement, program, a, b);
        }
        ids.len()
    }

    /// Traps worth touching this round: every trap holding a frontier-gate
    /// qubit plus every trap on the shortest route between the two operand
    /// traps of a frontier gate.
    fn relevant_traps(&self, placement: &Placement, frontier: &[Gate]) -> HashSet<TrapId> {
        let mut relevant = HashSet::new();
        for gate in frontier {
            let Some((a, b)) = gate.two_qubit_pair() else { continue };
            let (Some(ta), Some(tb)) = (placement.trap_of(a), placement.trap_of(b)) else {
                continue;
            };
            for t in self.router.path(ta, tb) {
                relevant.insert(t);
            }
        }
        relevant
    }

    /// Valid generic swaps touching a relevant trap, excluding recent moves
    /// and purposeless reorders (a reorder is only worth considering when it
    /// moves a space strictly closer to one of its trap's chain ends, i.e.
    /// towards a shuttle port).
    fn candidates(
        &self,
        placement: &Placement,
        relevant: &HashSet<TrapId>,
        recent: &VecDeque<(SlotId, SlotId)>,
    ) -> Vec<GenericSwap> {
        GenericSwap::candidates(self.graph, placement)
            .into_iter()
            .filter(|s| {
                relevant.contains(&self.graph.slot_trap(s.a))
                    || relevant.contains(&self.graph.slot_trap(s.b))
            })
            .filter(|s| {
                !recent.iter().any(|&(a, b)| (a == s.a && b == s.b) || (a == s.b && b == s.a))
            })
            .filter(|s| self.reorder_is_purposeful(placement, s))
            .collect()
    }

    /// Reorders only matter when they push either the space or the moved
    /// ion towards a chain end (a shuttle port) — anything else shuffles
    /// the interior without affecting routing. SWAP gates and shuttles are
    /// always considered.
    fn reorder_is_purposeful(&self, placement: &Placement, swap: &GenericSwap) -> bool {
        if swap.kind != GenericSwapKind::Reorder {
            return true;
        }
        // After the exchange the space sits where the qubit was and vice versa.
        let (space_slot, qubit_slot) = if placement.is_space(swap.a) {
            (swap.a, swap.b)
        } else {
            (swap.b, swap.a)
        };
        let trap = self.graph.topology().trap(self.graph.slot_trap(space_slot));
        let space_moves_out =
            trap.distance_to_nearest_end(qubit_slot) < trap.distance_to_nearest_end(space_slot);
        let qubit_moves_out =
            trap.distance_to_nearest_end(space_slot) < trap.distance_to_nearest_end(qubit_slot);
        space_moves_out || qubit_moves_out
    }

    /// Applies a chosen generic swap: mutates the placement, emits the
    /// corresponding hardware operation and marks the moved qubits in the
    /// decay tracker.
    fn apply_swap(
        &self,
        swap: &GenericSwap,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        decay: &mut DecayTracker,
        mechanics: &Mechanics<'_>,
    ) {
        for q in swap.moved_qubits(placement) {
            decay.mark(q);
        }
        match swap.kind {
            GenericSwapKind::SwapGate => {
                let a = placement.occupant(swap.a).expect("swap-gate endpoints hold qubits");
                let b = placement.occupant(swap.b).expect("swap-gate endpoints hold qubits");
                let trap = self.graph.slot_trap(swap.a);
                program.push(ScheduledOp::SwapGate {
                    a,
                    b,
                    trap,
                    chain_len: placement.trap_occupancy(trap),
                    ion_distance: mechanics.ion_distance(placement, swap.a, swap.b),
                });
                placement.swap_slots(swap.a, swap.b);
            }
            GenericSwapKind::Reorder => {
                let trap = self.graph.slot_trap(swap.a);
                program.push(ScheduledOp::IonReorder { trap, steps: 1 });
                placement.swap_slots(swap.a, swap.b);
            }
            GenericSwapKind::Shuttle { junctions } => {
                let (from_slot, to_slot) = if placement.occupant(swap.a).is_some() {
                    (swap.a, swap.b)
                } else {
                    (swap.b, swap.a)
                };
                let qubit = placement.occupant(from_slot).expect("shuttle moves a qubit");
                let from_trap = self.graph.slot_trap(from_slot);
                let to_trap = self.graph.slot_trap(to_slot);
                let source_chain_len = placement.trap_occupancy(from_trap);
                let dest_chain_len = placement.trap_occupancy(to_trap) + 1;
                placement.swap_slots(from_slot, to_slot);
                program.push(ScheduledOp::Shuttle {
                    qubit,
                    from_trap,
                    to_trap,
                    junctions,
                    segments: 1,
                    source_chain_len,
                    dest_chain_len,
                });
            }
        }
    }
}

fn push_recent(recent: &mut VecDeque<(SlotId, SlotId)>, pair: (SlotId, SlotId)) {
    recent.push_back(pair);
    while recent.len() > 6 {
        recent.pop_front();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial;
    use ssync_arch::QccdTopology;
    use ssync_circuit::generators::{qft, random_two_qubit_circuit};
    use ssync_circuit::Qubit;

    fn compile(
        circuit: &Circuit,
        topo: &QccdTopology,
        config: &CompilerConfig,
    ) -> (CompiledProgram, SchedulerStats) {
        let graph = SlotGraph::new(topo.clone(), config.weights);
        let router = TrapRouter::new(topo, config.weights);
        let placement = initial::build_placement(circuit, &graph, config);
        let mut scheduler = Scheduler::new(&graph, &router, config);
        let (program, final_placement) = scheduler.run(circuit, placement).unwrap();
        final_placement.validate().unwrap();
        (program, scheduler.stats())
    }

    #[test]
    fn all_gates_of_a_small_circuit_are_scheduled() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(2), Qubit(3));
        c.cx(Qubit(1), Qubit(2));
        c.cx(Qubit(0), Qubit(3));
        let topo = QccdTopology::linear(2, 3);
        let (program, _) = compile(&c, &topo, &CompilerConfig::default());
        assert_eq!(program.counts().two_qubit_gates, 4);
    }

    #[test]
    fn colocated_circuit_needs_no_shuttles() {
        let mut c = Circuit::new(4);
        for i in 0..3u32 {
            c.cx(Qubit(i), Qubit(i + 1));
        }
        // Everything fits into a single trap under the gathering mapping.
        let topo = QccdTopology::linear(2, 6);
        let (program, _) = compile(&c, &topo, &CompilerConfig::default());
        assert_eq!(program.counts().shuttles, 0);
        assert_eq!(program.counts().two_qubit_gates, 3);
    }

    #[test]
    fn cross_trap_gate_forces_exactly_one_shuttle() {
        let mut c = Circuit::new(2);
        c.cx(Qubit(0), Qubit(1));
        let topo = QccdTopology::linear(2, 3);
        let config = CompilerConfig::default().with_initial_mapping(
            crate::config::InitialMapping::EvenDivided,
        );
        let (program, _) = compile(&c, &topo, &config);
        assert_eq!(program.counts().two_qubit_gates, 1);
        assert_eq!(program.counts().shuttles, 1);
    }

    #[test]
    fn qft_schedules_completely_on_every_topology() {
        let circuit = qft(10);
        for topo in [
            QccdTopology::linear(2, 8),
            QccdTopology::grid(2, 2, 5),
            QccdTopology::fully_connected(3, 6),
        ] {
            let (program, _) = compile(&circuit, &topo, &CompilerConfig::default());
            assert_eq!(
                program.counts().two_qubit_gates,
                circuit.two_qubit_gate_count(),
                "{}",
                topo.name()
            );
        }
    }

    #[test]
    fn random_circuits_schedule_on_tight_devices() {
        for seed in 0..5u64 {
            let circuit = random_two_qubit_circuit(12, 60, seed);
            let topo = QccdTopology::grid(2, 2, 4); // 16 slots for 12 qubits
            let (program, _) = compile(&circuit, &topo, &CompilerConfig::default());
            assert_eq!(program.counts().two_qubit_gates, 60, "seed {seed}");
        }
    }

    #[test]
    fn single_qubit_gates_are_preserved() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.h(Qubit(1));
        c.cx(Qubit(0), Qubit(2));
        let topo = QccdTopology::linear(2, 3);
        let (program, _) = compile(&c, &topo, &CompilerConfig::default());
        assert_eq!(program.counts().single_qubit_gates, 2);
    }

    #[test]
    fn heuristic_handles_most_routing_without_fallback() {
        let circuit = qft(16);
        let topo = QccdTopology::grid(2, 2, 6);
        let (_, stats) = compile(&circuit, &topo, &CompilerConfig::default());
        assert!(stats.heuristic_swaps > 0);
        // The fallback is a safety net; the heuristic should carry the bulk.
        assert!(
            stats.fallback_routed_gates * 10 <= circuit.two_qubit_gate_count(),
            "fallback used too often: {} of {} gates",
            stats.fallback_routed_gates,
            circuit.two_qubit_gate_count()
        );
    }

    #[test]
    fn scheduler_reports_stats() {
        let circuit = qft(8);
        let topo = QccdTopology::linear(2, 6);
        let (_, stats) = compile(&circuit, &topo, &CompilerConfig::default());
        assert!(stats.iterations > 0);
    }
}
