//! The generic-swap based shuttling scheduler (Algorithm 1 of the paper).
//!
//! Three implementations live here:
//!
//! * [`Scheduler::run`] — the optimized hot path: per-trap candidate
//!   enumeration, incrementally maintained frontier / look-ahead gate
//!   lists, a precomputed [`DistanceMatrix`], cached per-gate base scores
//!   and reusable scratch buffers (the inner loop allocates nothing).
//!   When [`CompilerConfig::scoring_threads`] (or `SSYNC_SCORE_THREADS`)
//!   resolves above one, `run` dispatches to a parallel twin that scores
//!   each candidate pass across a persistent crew of helper threads (see
//!   [`crate::par_score`]) — output stays bit-identical at any thread
//!   count because serial and parallel paths share one total-order
//!   comparator on `(score, candidate index)`.
//! * [`Scheduler::run_reference`] — the straightforward transcription of
//!   Algorithm 1 (global candidate enumeration, fresh collections every
//!   iteration, per-call distance recomputation). It exists as the golden
//!   reference: both entry points emit **bit-identical** programs and
//!   stats for the same inputs, which the `hot_path_equivalence`
//!   integration tests enforce and the `compile_time` benchmark exploits
//!   to measure the speedup.

use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::generic_swap::{GenericSwap, GenericSwapKind};
use crate::heuristic::{DecayTracker, HeuristicScorer, ScoreCache, ScoreShard, ScoringScratch};
use crate::mechanics::Mechanics;
use crate::par_score::{
    better_candidate, crew_worker, resolve_scoring_threads, score_shard, CrewShared, PassPhase,
    ScoringTelemetry, StopGuard,
};
use ssync_arch::{Device, DistanceMatrix, Placement, SlotGraph, SlotId, TrapId, TrapRouter};
use ssync_circuit::{Circuit, DependencyDag, Gate, LookaheadScratch, NodeId};
use ssync_sim::{CompiledProgram, ScheduledOp};
use ssync_telemetry::{FlightEvent, FlightRecorder, FlightRecording};
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

/// Statistics the scheduler collects about its own search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Scheduler iterations (candidate-selection rounds).
    pub iterations: usize,
    /// Generic swaps applied through the heuristic search.
    pub heuristic_swaps: usize,
    /// Gates routed by the deterministic fallback (should stay near zero).
    pub fallback_routed_gates: usize,
}

/// Ring buffer of the most recent generic swaps (tabu list). Fixed
/// capacity, no heap traffic.
#[derive(Debug, Clone)]
struct RecentSwaps {
    buf: [(SlotId, SlotId); RECENT_CAP],
    len: usize,
    next: usize,
}

impl Default for RecentSwaps {
    fn default() -> Self {
        RecentSwaps { buf: [(SlotId(0), SlotId(0)); RECENT_CAP], len: 0, next: 0 }
    }
}

const RECENT_CAP: usize = 6;

/// Hard ceiling on scoring threads per compile — a misconfigured knob
/// must not spawn hundreds of helpers (output is identical at any count,
/// so clamping is always safe).
const MAX_SCORE_THREADS: usize = 64;

/// Circuits with fewer two-qubit gates than this run serially even when
/// parallel scoring is enabled: their candidate passes are too small to
/// amortise spawning a crew. Output is unaffected — serial and parallel
/// paths are bit-identical by construction.
const MIN_PARALLEL_GATES: usize = 8;

/// Candidate passes smaller than this are scored inline by the main
/// thread without waking the (already spawned) crew: a condvar round-trip
/// costs more than scoring a handful of candidates.
const MIN_PARALLEL_CANDIDATES: usize = 24;

impl RecentSwaps {
    fn push(&mut self, pair: (SlotId, SlotId)) {
        self.buf[self.next] = pair;
        self.next = (self.next + 1) % RECENT_CAP;
        self.len = (self.len + 1).min(RECENT_CAP);
    }

    fn contains(&self, a: SlotId, b: SlotId) -> bool {
        self.buf[..self.len].iter().any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    fn clear(&mut self) {
        self.len = 0;
        self.next = 0;
    }
}

/// The scheduler's reusable working memory: every per-iteration buffer the
/// hot path touches, extracted so batch and service workers can carry one
/// instance across many compiles (and devices) instead of reallocating it
/// per [`Scheduler`]. The contents are pure scratch — they never influence
/// the produced program, which the batch/service golden equivalence tests
/// enforce.
#[derive(Debug, Default)]
pub struct SchedulerScratch {
    frontier: Vec<(NodeId, Gate)>,
    lookahead: Vec<(NodeId, Gate)>,
    lookahead_ids: Vec<NodeId>,
    lookahead_scratch: LookaheadScratch,
    relevant_mask: Vec<bool>,
    relevant_list: Vec<TrapId>,
    edge_stamp: Vec<u64>,
    edge_epoch: u64,
    edge_list: Vec<u32>,
    candidates: Vec<GenericSwap>,
    drain_scratch: Vec<NodeId>,
    executed_ids: Vec<NodeId>,
    scoring: ScoringScratch,
    /// The main thread's readiness memo (shard 0 of every scoring pass;
    /// the only shard on the serial path).
    shard: ScoreShard,
}

impl SchedulerScratch {
    /// Re-sizes the device-shaped buffers for a (possibly different) device
    /// and resets the cross-iteration marks, keeping every allocation.
    /// The epoch counter keeps rising monotonically across compiles, so a
    /// stale stamp can never collide with a future pass.
    fn prepare(&mut self, num_traps: usize, num_edges: usize) {
        self.relevant_mask.clear();
        self.relevant_mask.resize(num_traps, false);
        self.relevant_list.clear();
        self.edge_stamp.clear();
        self.edge_stamp.resize(num_edges, 0);
    }
}

/// The generic-swap scheduler: executes every two-qubit gate of a circuit
/// on a QCCD device, inserting SWAP gates, reorders and shuttles chosen by
/// the heuristic of Eqs. (1)–(2).
#[derive(Debug)]
pub struct Scheduler<'a> {
    graph: &'a SlotGraph,
    router: &'a TrapRouter,
    config: &'a CompilerConfig,
    stats: SchedulerStats,
    telemetry: ScoringTelemetry,
    /// All-pairs slot distances, shared from the [`Device`] artifact.
    dist: &'a DistanceMatrix,
    /// Edge indices of the static graph touching each trap (either
    /// endpoint), ascending within each trap — the [`Device`]'s trap→edge
    /// candidate index.
    trap_edges: &'a [Vec<u32>],
    /// Reusable working memory (cleared, never reallocated, per iteration).
    scratch: SchedulerScratch,
    /// The compile flight recorder, present while
    /// [`CompilerConfig::flight_recorder`] is on for the current run.
    /// Observation-only: nothing in the scheduling loop ever reads it, so
    /// output is bit-identical with or without it.
    /// [`Scheduler::run_reference`] never records.
    recorder: Option<FlightRecorder>,
}

impl<'a> Scheduler<'a> {
    /// Creates a scheduler over a prepared [`Device`]. All per-device
    /// structures (slot graph, trap router, all-pairs [`DistanceMatrix`],
    /// trap→edge candidate index) are borrowed from the shared artifact —
    /// nothing device-derived is rebuilt here, so schedulers are cheap to
    /// create per compile and many can run concurrently over one device.
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than
    /// `config` — the precomputed distances would silently disagree with
    /// the Eq. 2 heuristic otherwise.
    pub fn new(device: &'a Device, config: &'a CompilerConfig) -> Self {
        Self::with_scratch(device, config, SchedulerScratch::default())
    }

    /// [`Scheduler::new`] reusing the working memory of a previous
    /// scheduler (recovered via [`Scheduler::into_scratch`]). The scratch
    /// may come from a run over a *different* device — the device-shaped
    /// buffers are resized here. Batch and service workers use this to
    /// compile many circuits with zero steady-state scratch allocation.
    ///
    /// # Panics
    ///
    /// Same condition as [`Scheduler::new`].
    pub fn with_scratch(
        device: &'a Device,
        config: &'a CompilerConfig,
        mut scratch: SchedulerScratch,
    ) -> Self {
        assert!(
            device.weights() == config.weights,
            "device was built with different edge weights than the scheduler config"
        );
        let graph = device.graph();
        scratch.prepare(graph.topology().num_traps(), graph.edges().len());
        Scheduler {
            graph,
            router: device.router(),
            config,
            stats: SchedulerStats::default(),
            telemetry: ScoringTelemetry::default(),
            dist: device.distance_matrix(),
            trap_edges: device.trap_edge_index(),
            scratch,
            recorder: None,
        }
    }

    /// Consumes the scheduler and hands its working memory back for reuse
    /// in a later [`Scheduler::with_scratch`].
    pub fn into_scratch(self) -> SchedulerScratch {
        self.scratch
    }

    /// Search statistics of the last run.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Scoring telemetry of the last [`Scheduler::run`]: candidates
    /// scored, shards dispatched, readiness-memo hits. Deliberately not
    /// part of [`SchedulerStats`] — it describes the scoring *backend*
    /// (and so differs between serial and parallel runs), while the stats
    /// are part of the golden output contract.
    /// [`Scheduler::run_reference`] reports zeros.
    pub fn scoring_telemetry(&self) -> ScoringTelemetry {
        self.telemetry
    }

    /// Takes the flight recording of the last [`Scheduler::run`], if
    /// [`CompilerConfig::flight_recorder`] was on. Like the scoring
    /// telemetry, events describe the scoring backend's work (serial and
    /// parallel runs record different candidate margins) while the
    /// compiled output stays bit-identical either way.
    pub fn take_recording(&mut self) -> Option<FlightRecording> {
        self.recorder.take().map(FlightRecorder::into_recording)
    }

    /// The precomputed all-pairs slot distance matrix.
    pub fn distance_matrix(&self) -> &DistanceMatrix {
        self.dist
    }

    /// Runs Algorithm 1: schedules every two-qubit gate of `circuit`
    /// starting from `placement` (which must already place every program
    /// qubit), appending the generated hardware operations to a fresh
    /// [`CompiledProgram`].
    ///
    /// Single-qubit gates are emitted up-front: they never constrain
    /// routing and only contribute (near-unity) fidelity.
    ///
    /// When [`CompilerConfig::scoring_threads`] (or the
    /// `SSYNC_SCORE_THREADS` environment variable, see
    /// [`resolve_scoring_threads`]) resolves above one and the circuit is
    /// big enough to amortise a crew spawn, candidate scoring fans out
    /// over helper threads — the produced program, final placement and
    /// [`SchedulerStats`] are **bit-identical** at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::SchedulingStalled`] if the iteration budget
    /// is exhausted, which indicates an internal error rather than an
    /// expected user-facing failure.
    pub fn run(
        &mut self,
        circuit: &Circuit,
        placement: Placement,
    ) -> Result<(CompiledProgram, Placement), CompileError> {
        let threads = resolve_scoring_threads(self.config.scoring_threads).min(MAX_SCORE_THREADS);
        if threads <= 1 || circuit.two_qubit_gate_count() < MIN_PARALLEL_GATES {
            self.run_serial(circuit, placement)
        } else {
            self.run_parallel(circuit, placement, threads)
        }
    }

    /// The single-threaded hot path (also the backend for circuits too
    /// small to amortise a crew spawn).
    fn run_serial(
        &mut self,
        circuit: &Circuit,
        mut placement: Placement,
    ) -> Result<(CompiledProgram, Placement), CompileError> {
        self.stats = SchedulerStats::default();
        self.telemetry = ScoringTelemetry::default();
        self.recorder = self.config.flight_recorder.then(FlightRecorder::with_default_capacity);
        let mut program =
            CompiledProgram::new(circuit.num_qubits(), self.graph.topology().num_traps());
        for gate in circuit.iter() {
            if !gate.is_two_qubit() {
                let q = gate.qubits()[0];
                program.push(ScheduledOp::SingleQubitGate { qubit: q });
            }
        }

        let mut dag = DependencyDag::from_circuit(circuit);
        let mechanics = Mechanics::new(self.graph, self.router);
        let mut cache = ScoreCache::new(dag.len(), self.graph.topology().num_traps());
        let mut decay = DecayTracker::new(
            circuit.num_qubits(),
            self.config.decay_delta,
            self.config.decay_reset_interval,
        );
        let mut recent = RecentSwaps::default();
        let mut stall = 0usize;
        let budget = 10_000 + 400 * dag.len();
        // The frontier / look-ahead gate lists only change when the DAG
        // retires gates, not when ions move; rebuild them lazily.
        let mut gate_lists_stale = true;

        while !dag.is_complete() {
            self.stats.iterations += 1;
            if self.stats.iterations > budget {
                return Err(CompileError::SchedulingStalled { remaining_gates: dag.remaining() });
            }

            // Step 4-10: execute every frontier gate whose qubits share a trap.
            let executed = self.execute_ready(&mut dag, &mut placement, &mut program, &mechanics);
            if executed > 0 {
                if let Some(rec) = self.recorder.as_mut() {
                    rec.record(FlightEvent::LayerClosed {
                        layer: self.stats.iterations as u64,
                        executed: executed as u64,
                    });
                }
                stall = 0;
                gate_lists_stale = true;
                continue;
            }
            if dag.is_complete() {
                break;
            }

            // Step 11: gather the candidate generic swaps near the frontier.
            if gate_lists_stale {
                self.rebuild_gate_lists(&dag);
                gate_lists_stale = false;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.record(FlightEvent::LayerOpened {
                        layer: self.stats.iterations as u64,
                        ready_gates: self.scratch.frontier.len() as u64,
                    });
                }
            }
            self.collect_relevant_traps(&placement);
            self.collect_candidates(&placement, Some(&recent));
            if self.scratch.candidates.is_empty() {
                // Allow undoing recent swaps rather than stalling outright.
                self.collect_candidates(&placement, None);
            }

            // The scorer borrows only the `dist` field, so the remaining
            // per-iteration scratch mutations stay disjoint.
            let scorer = HeuristicScorer::with_distance_matrix(
                self.graph,
                self.router,
                self.config,
                self.dist,
            );
            let mut applied = false;
            if !self.scratch.candidates.is_empty() {
                // Steps 12-18: score each candidate, apply the cheapest.
                scorer.prepare_pass(
                    &mut self.scratch.scoring,
                    &mut cache,
                    &placement,
                    &decay,
                    &self.scratch.frontier,
                    &self.scratch.lookahead,
                );
                let pass_started = Instant::now();
                self.scratch.shard.begin_pass();
                // The runner-up score is tracked only while the recorder is
                // on (it feeds the CandidateChosen margin and nothing else).
                let track_margin = self.recorder.is_some();
                let mut second: Option<f64> = None;
                let mut best: Option<(f64, usize)> = None;
                for (i, swap) in self.scratch.candidates.iter().enumerate() {
                    let score = scorer.score_swap_sharded(
                        &self.scratch.scoring,
                        &mut self.scratch.shard,
                        &placement,
                        swap,
                    );
                    if better_candidate(score, i, best) {
                        if track_margin {
                            second = best.map(|(s, _)| s);
                        }
                        best = Some((score, i));
                    } else if track_margin {
                        second = Some(match second {
                            Some(s2) if s2.total_cmp(&score).is_le() => s2,
                            _ => score,
                        });
                    }
                }
                self.telemetry.candidates_scored += self.scratch.candidates.len() as u64;
                self.telemetry.score_shards_spawned += 1;
                self.telemetry.score_cache_shard_hits += self.scratch.shard.take_hits();
                self.telemetry.scoring_time_ns += pass_started.elapsed().as_nanos() as u64;
                if let Some((score, idx)) = best {
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.record(FlightEvent::CandidateChosen {
                            layer: self.stats.iterations as u64,
                            candidate: idx as u64,
                            score_bits: score.to_bits(),
                            margin_bits: second
                                .map(|s| (s - score).to_bits())
                                .unwrap_or_else(|| f64::NAN.to_bits()),
                        });
                    }
                    let swap = self.scratch.candidates[idx];
                    let mut rec = self.recorder.take();
                    self.apply_swap(
                        &swap,
                        &mut placement,
                        &mut program,
                        &mut decay,
                        &mechanics,
                        rec.as_mut(),
                    );
                    self.recorder = rec;
                    bump_swap_epochs(&mut cache, self.graph, &swap);
                    recent.push((swap.a, swap.b));
                    self.stats.heuristic_swaps += 1;
                    applied = true;
                }
            }

            decay.tick();
            stall += 1;
            if !applied || stall > self.config.max_stall_iterations {
                // Safety net: route the cheapest frontier gate directly,
                // scoring each frontier gate exactly once through the
                // readiness memo (gates routing through a shared entry
                // port reuse its readiness scan).
                self.telemetry.stall_fallback_entries += 1;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.record(FlightEvent::StallFallback {
                        layer: self.stats.iterations as u64,
                        remaining: dag.remaining() as u64,
                    });
                }
                let pass_started = Instant::now();
                self.scratch.shard.begin_pass();
                let mut best_gate: Option<(f64, usize)> = None;
                for (i, (_, gate)) in self.scratch.frontier.iter().enumerate() {
                    let score =
                        scorer.gate_score_sharded(&mut self.scratch.shard, &placement, gate);
                    if better_candidate(score, i, best_gate) {
                        best_gate = Some((score, i));
                    }
                }
                self.telemetry.candidates_scored += self.scratch.frontier.len() as u64;
                self.telemetry.score_shards_spawned += 1;
                self.telemetry.score_cache_shard_hits += self.scratch.shard.take_hits();
                self.telemetry.scoring_time_ns += pass_started.elapsed().as_nanos() as u64;
                let gate = best_gate
                    .map(|(_, i)| self.scratch.frontier[i].1)
                    .expect("frontier is non-empty while the DAG is incomplete");
                let (q1, q2) = gate.two_qubit_pair().expect("frontier gates are two-qubit");
                let dest = placement.trap_of(q2).expect("qubit placed");
                if placement.trap_free_slots(dest) == 0 {
                    mechanics.make_space(&mut placement, &mut program, dest, 1, &[q1, q2]);
                }
                let dest = placement.trap_of(q2).expect("qubit placed");
                if !mechanics.move_qubit_to_trap(&mut placement, &mut program, q1, dest) {
                    return Err(CompileError::SchedulingStalled {
                        remaining_gates: dag.remaining(),
                    });
                }
                self.stats.fallback_routed_gates += 1;
                stall = 0;
                recent.clear();
                // The fallback reshuffles ions arbitrarily: drop every
                // cached base score.
                cache.bump_all();
            }
        }

        Ok((program, placement))
    }

    /// The parallel twin of [`Scheduler::run_serial`]: the same Algorithm 1
    /// loop, with every scoring pass fanned out over a persistent crew of
    /// `threads - 1` helper threads (the main thread always scores shard
    /// 0). The two loop bodies must stay in lockstep — the corpus
    /// determinism tests and the golden `run_reference` equivalence pin
    /// them to bit-identical output.
    ///
    /// Concurrency protocol (see [`crate::par_score`] for the types):
    /// the placement lives in a `RwLock` for the whole run. The main
    /// thread holds the write lock through every mutation phase, publishes
    /// each scoring pass by swapping the prepared scratch into a shared
    /// `PassData` cell, *releases* the write lock, wakes the crew, scores
    /// its own shard, and spin-waits for the countdown. Helpers only take
    /// read locks after observing the generation bump, so the locks are
    /// never contended; phases strictly alternate.
    fn run_parallel(
        &mut self,
        circuit: &Circuit,
        placement: Placement,
        threads: usize,
    ) -> Result<(CompiledProgram, Placement), CompileError> {
        self.stats = SchedulerStats::default();
        self.telemetry = ScoringTelemetry::default();
        self.recorder = self.config.flight_recorder.then(FlightRecorder::with_default_capacity);
        let mut program =
            CompiledProgram::new(circuit.num_qubits(), self.graph.topology().num_traps());
        for gate in circuit.iter() {
            if !gate.is_two_qubit() {
                let q = gate.qubits()[0];
                program.push(ScheduledOp::SingleQubitGate { qubit: q });
            }
        }

        let mut dag = DependencyDag::from_circuit(circuit);
        let mechanics = Mechanics::new(self.graph, self.router);
        let mut cache = ScoreCache::new(dag.len(), self.graph.topology().num_traps());
        let mut decay = DecayTracker::new(
            circuit.num_qubits(),
            self.config.decay_delta,
            self.config.decay_reset_interval,
        );
        let mut recent = RecentSwaps::default();
        let mut stall = 0usize;
        let budget = 10_000 + 400 * dag.len();
        let mut gate_lists_stale = true;

        let shared = CrewShared::new(placement, threads);
        // Plain `&'a` refs, copied out so the helper closures don't
        // capture `self` (which the main loop mutably borrows).
        let (graph, router, config, dist) = (self.graph, self.router, self.config, self.dist);

        let run_result: Result<(), CompileError> = std::thread::scope(|scope| {
            // Dropped on every exit path (including unwinds): parks the
            // crew permanently so the scope join can't deadlock.
            let _stop = StopGuard(&shared);
            for k in 1..threads {
                let shared = &shared;
                scope.spawn(move || crew_worker(shared, k, threads, graph, router, config, dist));
            }

            while !dag.is_complete() {
                self.stats.iterations += 1;
                if self.stats.iterations > budget {
                    return Err(CompileError::SchedulingStalled {
                        remaining_gates: dag.remaining(),
                    });
                }

                let mut placement = shared.placement.write().expect("placement lock");
                let executed =
                    self.execute_ready(&mut dag, &mut placement, &mut program, &mechanics);
                if executed > 0 {
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.record(FlightEvent::LayerClosed {
                            layer: self.stats.iterations as u64,
                            executed: executed as u64,
                        });
                    }
                    stall = 0;
                    gate_lists_stale = true;
                    continue;
                }
                if dag.is_complete() {
                    break;
                }

                if gate_lists_stale {
                    self.rebuild_gate_lists(&dag);
                    gate_lists_stale = false;
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.record(FlightEvent::LayerOpened {
                            layer: self.stats.iterations as u64,
                            ready_gates: self.scratch.frontier.len() as u64,
                        });
                    }
                }
                self.collect_relevant_traps(&placement);
                self.collect_candidates(&placement, Some(&recent));
                if self.scratch.candidates.is_empty() {
                    self.collect_candidates(&placement, None);
                }

                let scorer =
                    HeuristicScorer::with_distance_matrix(graph, router, config, self.dist);
                let mut applied = false;
                if !self.scratch.candidates.is_empty() {
                    scorer.prepare_pass(
                        &mut self.scratch.scoring,
                        &mut cache,
                        &placement,
                        &decay,
                        &self.scratch.frontier,
                        &self.scratch.lookahead,
                    );
                    let n = self.scratch.candidates.len();
                    self.telemetry.candidates_scored += n as u64;
                    let pass_started = Instant::now();
                    let best = if n < MIN_PARALLEL_CANDIDATES {
                        // Too small to pay a crew wake-up: score inline,
                        // exactly like the serial path.
                        self.scratch.shard.begin_pass();
                        let mut best: Option<(f64, usize)> = None;
                        for (i, swap) in self.scratch.candidates.iter().enumerate() {
                            let score = scorer.score_swap_sharded(
                                &self.scratch.scoring,
                                &mut self.scratch.shard,
                                &placement,
                                swap,
                            );
                            if better_candidate(score, i, best) {
                                best = Some((score, i));
                            }
                        }
                        self.telemetry.score_shards_spawned += 1;
                        self.telemetry.score_cache_shard_hits += self.scratch.shard.take_hits();
                        best
                    } else {
                        // Publish the pass, release the placement lock,
                        // fan out.
                        {
                            let mut pass = shared.pass.write().expect("pass lock");
                            pass.phase = PassPhase::Candidates;
                            std::mem::swap(&mut pass.scoring, &mut self.scratch.scoring);
                            std::mem::swap(&mut pass.candidates, &mut self.scratch.candidates);
                        }
                        drop(placement);
                        let best = self.score_pass_with_crew(&shared, &scorer, threads, n);
                        // Take the buffers back and re-acquire the
                        // placement for the mutation phase.
                        {
                            let mut pass = shared.pass.write().expect("pass lock");
                            std::mem::swap(&mut pass.scoring, &mut self.scratch.scoring);
                            std::mem::swap(&mut pass.candidates, &mut self.scratch.candidates);
                        }
                        placement = shared.placement.write().expect("placement lock");
                        best
                    };
                    self.telemetry.scoring_time_ns += pass_started.elapsed().as_nanos() as u64;
                    if let Some((score, idx)) = best {
                        if let Some(rec) = self.recorder.as_mut() {
                            // The crew merge returns only the winner, so
                            // parallel runs record no runner-up margin.
                            rec.record(FlightEvent::CandidateChosen {
                                layer: self.stats.iterations as u64,
                                candidate: idx as u64,
                                score_bits: score.to_bits(),
                                margin_bits: f64::NAN.to_bits(),
                            });
                        }
                        let swap = self.scratch.candidates[idx];
                        let mut rec = self.recorder.take();
                        self.apply_swap(
                            &swap,
                            &mut placement,
                            &mut program,
                            &mut decay,
                            &mechanics,
                            rec.as_mut(),
                        );
                        self.recorder = rec;
                        bump_swap_epochs(&mut cache, self.graph, &swap);
                        recent.push((swap.a, swap.b));
                        self.stats.heuristic_swaps += 1;
                        applied = true;
                    }
                }

                decay.tick();
                stall += 1;
                if !applied || stall > self.config.max_stall_iterations {
                    // Stall-fallback: score the frontier gates, sharded
                    // the same way as the candidate pass.
                    self.telemetry.stall_fallback_entries += 1;
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.record(FlightEvent::StallFallback {
                            layer: self.stats.iterations as u64,
                            remaining: dag.remaining() as u64,
                        });
                    }
                    let n = self.scratch.frontier.len();
                    self.telemetry.candidates_scored += n as u64;
                    let pass_started = Instant::now();
                    let best_gate = if n < MIN_PARALLEL_CANDIDATES {
                        self.scratch.shard.begin_pass();
                        let mut best: Option<(f64, usize)> = None;
                        for (i, (_, gate)) in self.scratch.frontier.iter().enumerate() {
                            let score = scorer.gate_score_sharded(
                                &mut self.scratch.shard,
                                &placement,
                                gate,
                            );
                            if better_candidate(score, i, best) {
                                best = Some((score, i));
                            }
                        }
                        self.telemetry.score_shards_spawned += 1;
                        self.telemetry.score_cache_shard_hits += self.scratch.shard.take_hits();
                        best
                    } else {
                        {
                            let mut pass = shared.pass.write().expect("pass lock");
                            pass.phase = PassPhase::FallbackGates;
                            pass.gates.clear();
                            pass.gates.extend(self.scratch.frontier.iter().map(|&(_, g)| g));
                        }
                        drop(placement);
                        let best = self.score_pass_with_crew(&shared, &scorer, threads, n);
                        placement = shared.placement.write().expect("placement lock");
                        best
                    };
                    self.telemetry.scoring_time_ns += pass_started.elapsed().as_nanos() as u64;
                    let gate = best_gate
                        .map(|(_, i)| self.scratch.frontier[i].1)
                        .expect("frontier is non-empty while the DAG is incomplete");
                    let (q1, q2) = gate.two_qubit_pair().expect("frontier gates are two-qubit");
                    let dest = placement.trap_of(q2).expect("qubit placed");
                    if placement.trap_free_slots(dest) == 0 {
                        mechanics.make_space(&mut placement, &mut program, dest, 1, &[q1, q2]);
                    }
                    let dest = placement.trap_of(q2).expect("qubit placed");
                    if !mechanics.move_qubit_to_trap(&mut placement, &mut program, q1, dest) {
                        return Err(CompileError::SchedulingStalled {
                            remaining_gates: dag.remaining(),
                        });
                    }
                    self.stats.fallback_routed_gates += 1;
                    stall = 0;
                    recent.clear();
                    cache.bump_all();
                }
            }
            Ok(())
        });
        run_result?;

        let placement = shared.placement.into_inner().expect("placement lock");
        Ok((program, placement))
    }

    /// Runs one published scoring pass over the crew: wakes the helpers,
    /// scores shard 0 on the calling thread, waits for the countdown and
    /// merges the shard winners in shard order under the shared total
    /// order. Caller must have published `PassData` and released the
    /// placement write lock.
    fn score_pass_with_crew(
        &mut self,
        shared: &CrewShared,
        scorer: &HeuristicScorer<'_>,
        threads: usize,
        pass_len: usize,
    ) -> Option<(f64, usize)> {
        shared.dispatch();
        let own = {
            let placement = shared.placement.read().expect("placement lock");
            let pass = shared.pass.read().expect("pass lock");
            score_shard(scorer, &pass, &placement, 0, threads, &mut self.scratch.shard)
        };
        shared.wait();

        let chunk = pass_len.div_ceil(threads).max(1);
        self.telemetry.score_shards_spawned += pass_len.div_ceil(chunk) as u64;
        self.telemetry.score_cache_shard_hits += own.hits;
        let mut best = own.best;
        for slot in &shared.results[1..] {
            let r = slot.lock().expect("result lock");
            if let Some((score, idx)) = r.best {
                if better_candidate(score, idx, best) {
                    best = Some((score, idx));
                }
            }
            self.telemetry.score_cache_shard_hits += r.hits;
        }
        best
    }

    /// Rebuilds the cached frontier and look-ahead `(id, gate)` lists from
    /// the DAG. Called only when gates retired since the last rebuild.
    fn rebuild_gate_lists(&mut self, dag: &DependencyDag) {
        self.telemetry.frontier_rebuilds += 1;
        self.scratch.frontier.clear();
        self.scratch.frontier.extend(dag.frontier().iter().map(|&id| (id, dag.gate(id))));
        dag.lookahead_ids_into(
            self.config.lookahead_layers,
            &mut self.scratch.lookahead_scratch,
            &mut self.scratch.lookahead_ids,
        );
        self.scratch.lookahead.clear();
        self.scratch.lookahead.extend(
            self.scratch
                .lookahead_ids
                .iter()
                .skip(self.scratch.frontier.len())
                .map(|&id| (id, dag.gate(id))),
        );
    }

    /// Marks every trap holding a frontier-gate qubit plus every trap on
    /// the shortest route between the two operand traps of a frontier gate
    /// (the reusable-mask twin of [`Scheduler::relevant_traps_reference`]).
    fn collect_relevant_traps(&mut self, placement: &Placement) {
        for &t in &self.scratch.relevant_list {
            self.scratch.relevant_mask[t.index()] = false;
        }
        self.scratch.relevant_list.clear();
        for &(_, gate) in &self.scratch.frontier {
            let Some((a, b)) = gate.two_qubit_pair() else { continue };
            let (Some(ta), Some(tb)) = (placement.trap_of(a), placement.trap_of(b)) else {
                continue;
            };
            if ta != tb && self.router.next_hop(ta, tb).is_none() {
                continue; // unreachable pair: the reference inserts nothing
            }
            let mut cur = ta;
            let mut hops = 0usize;
            loop {
                if !self.scratch.relevant_mask[cur.index()] {
                    self.scratch.relevant_mask[cur.index()] = true;
                    self.scratch.relevant_list.push(cur);
                }
                if cur == tb || hops > self.scratch.relevant_mask.len() {
                    break;
                }
                match self.router.next_hop(cur, tb) {
                    Some(n) if n != cur => cur = n,
                    _ => break,
                }
                hops += 1;
            }
        }
    }

    /// Gathers the valid generic swaps touching a relevant trap into the
    /// reusable candidate buffer, in static-edge order (matching the
    /// reference's global enumerate-then-filter order exactly). `recent`
    /// filters out tabu pairs when given.
    fn collect_candidates(&mut self, placement: &Placement, recent: Option<&RecentSwaps>) {
        // Union the per-trap edge lists, deduplicating inter-trap edges
        // with an epoch stamp, then sort: candidate order must be the
        // static edge order for tie-breaking to match the reference.
        self.scratch.edge_epoch += 1;
        let stamp = self.scratch.edge_epoch;
        self.scratch.edge_list.clear();
        for &t in &self.scratch.relevant_list {
            for &e in &self.trap_edges[t.index()] {
                let slot = &mut self.scratch.edge_stamp[e as usize];
                if *slot != stamp {
                    *slot = stamp;
                    self.scratch.edge_list.push(e);
                }
            }
        }
        self.scratch.edge_list.sort_unstable();
        self.scratch.candidates.clear();
        for &ei in &self.scratch.edge_list {
            let e = self.graph.edges()[ei as usize];
            let Some(swap) =
                GenericSwap::classify(self.graph, placement, e.a, e.b, e.kind, e.weight)
            else {
                continue;
            };
            if let Some(recent) = recent {
                if recent.contains(swap.a, swap.b) {
                    continue;
                }
            }
            if !self.reorder_is_purposeful(placement, &swap) {
                continue;
            }
            self.scratch.candidates.push(swap);
        }
    }

    /// The straightforward transcription of Algorithm 1, kept as the
    /// golden reference implementation: global candidate enumeration,
    /// fresh collections every iteration and per-call distance
    /// recomputation. Produces output bit-identical to [`Scheduler::run`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Scheduler::run`].
    pub fn run_reference(
        &mut self,
        circuit: &Circuit,
        mut placement: Placement,
    ) -> Result<(CompiledProgram, Placement), CompileError> {
        self.stats = SchedulerStats::default();
        self.telemetry = ScoringTelemetry::default();
        // The reference transcription never records — drop any recording
        // left over from a previous `run` so `take_recording` can't serve
        // a stale stream.
        self.recorder = None;
        let mut program =
            CompiledProgram::new(circuit.num_qubits(), self.graph.topology().num_traps());
        for gate in circuit.iter() {
            if !gate.is_two_qubit() {
                let q = gate.qubits()[0];
                program.push(ScheduledOp::SingleQubitGate { qubit: q });
            }
        }

        let mut dag = DependencyDag::from_circuit(circuit);
        let mechanics = Mechanics::new(self.graph, self.router);
        let scorer = HeuristicScorer::new(self.graph, self.router, self.config);
        let mut decay = DecayTracker::new(
            circuit.num_qubits(),
            self.config.decay_delta,
            self.config.decay_reset_interval,
        );
        let mut recent_swaps: VecDeque<(SlotId, SlotId)> = VecDeque::new();
        let mut stall = 0usize;
        let budget = 10_000 + 400 * dag.len();

        while !dag.is_complete() {
            self.stats.iterations += 1;
            if self.stats.iterations > budget {
                return Err(CompileError::SchedulingStalled { remaining_gates: dag.remaining() });
            }

            let executed =
                self.execute_ready_reference(&mut dag, &mut placement, &mut program, &mechanics);
            if executed > 0 {
                stall = 0;
                continue;
            }
            if dag.is_complete() {
                break;
            }

            let frontier: Vec<Gate> = dag.frontier().iter().map(|&id| dag.gate(id)).collect();
            let lookahead: Vec<Gate> = dag
                .lookahead(self.config.lookahead_layers)
                .into_iter()
                .skip(frontier.len())
                .collect();
            let relevant = self.relevant_traps_reference(&placement, &frontier);
            let mut candidates = self.candidates_reference(&placement, &relevant, &recent_swaps);
            if candidates.is_empty() {
                candidates = self.candidates_reference(&placement, &relevant, &VecDeque::new());
            }

            let mut applied = false;
            if !candidates.is_empty() {
                // Same total order as the hot path: strict `total_cmp`
                // on the score, candidate index on ties (the enumeration
                // order is the static edge order on both paths).
                let mut best: Option<(f64, GenericSwap, usize)> = None;
                for (i, swap) in candidates.into_iter().enumerate() {
                    let score = scorer.score_swap(&placement, &decay, &frontier, &lookahead, &swap);
                    if better_candidate(score, i, best.map(|(s, _, bi)| (s, bi))) {
                        best = Some((score, swap, i));
                    }
                }
                if let Some((_, swap, _)) = best {
                    self.apply_swap(
                        &swap,
                        &mut placement,
                        &mut program,
                        &mut decay,
                        &mechanics,
                        None,
                    );
                    recent_swaps.push_back((swap.a, swap.b));
                    while recent_swaps.len() > RECENT_CAP {
                        recent_swaps.pop_front();
                    }
                    self.stats.heuristic_swaps += 1;
                    applied = true;
                }
            }

            decay.tick();
            stall += 1;
            if !applied || stall > self.config.max_stall_iterations {
                // Safety net: route the cheapest frontier gate directly,
                // under the same NaN-safe `(score, index)` total order as
                // the hot path (`min_by` with a `partial_cmp` fallback to
                // `Equal` would mis-order NaN scores).
                let mut best_gate: Option<(f64, usize)> = None;
                for (i, gate) in frontier.iter().enumerate() {
                    let score = scorer.gate_score(&placement, gate);
                    if better_candidate(score, i, best_gate) {
                        best_gate = Some((score, i));
                    }
                }
                let gate = best_gate
                    .map(|(_, i)| frontier[i])
                    .expect("frontier is non-empty while the DAG is incomplete");
                let (q1, q2) = gate.two_qubit_pair().expect("frontier gates are two-qubit");
                let dest = placement.trap_of(q2).expect("qubit placed");
                if placement.trap_free_slots(dest) == 0 {
                    mechanics.make_space(&mut placement, &mut program, dest, 1, &[q1, q2]);
                }
                let dest = placement.trap_of(q2).expect("qubit placed");
                if !mechanics.move_qubit_to_trap(&mut placement, &mut program, q1, dest) {
                    return Err(CompileError::SchedulingStalled {
                        remaining_gates: dag.remaining(),
                    });
                }
                self.stats.fallback_routed_gates += 1;
                stall = 0;
                recent_swaps.clear();
            }
        }

        Ok((program, placement))
    }

    /// Executes every currently executable frontier gate; returns how many.
    /// Reuses the scheduler's drain buffers, so the per-iteration check
    /// allocates nothing.
    fn execute_ready(
        &mut self,
        dag: &mut DependencyDag,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        mechanics: &Mechanics<'_>,
    ) -> usize {
        let placement_ref = &*placement;
        let graph = self.graph;
        dag.drain_executable_into(
            |gate| {
                let Some((a, b)) = gate.two_qubit_pair() else { return false };
                match (placement_ref.slot_of(a), placement_ref.slot_of(b)) {
                    (Some(sa), Some(sb)) => graph.same_trap(sa, sb),
                    _ => false,
                }
            },
            &mut self.scratch.drain_scratch,
            &mut self.scratch.executed_ids,
        );
        for id in &self.scratch.executed_ids {
            let gate = dag.gate(*id);
            let (a, b) = gate.two_qubit_pair().expect("two-qubit gate");
            mechanics.emit_two_qubit_gate(placement, program, a, b);
        }
        self.scratch.executed_ids.len()
    }

    /// The straightforward, allocating twin of [`Scheduler::execute_ready`]
    /// used by the reference transcription: fresh `Vec`s every call via
    /// [`DependencyDag::drain_executable`].
    fn execute_ready_reference(
        &self,
        dag: &mut DependencyDag,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        mechanics: &Mechanics<'_>,
    ) -> usize {
        let placement_ref = &*placement;
        let graph = self.graph;
        let ids = dag.drain_executable(|gate| {
            let Some((a, b)) = gate.two_qubit_pair() else { return false };
            match (placement_ref.slot_of(a), placement_ref.slot_of(b)) {
                (Some(sa), Some(sb)) => graph.same_trap(sa, sb),
                _ => false,
            }
        });
        for id in &ids {
            let gate = dag.gate(*id);
            let (a, b) = gate.two_qubit_pair().expect("two-qubit gate");
            mechanics.emit_two_qubit_gate(placement, program, a, b);
        }
        ids.len()
    }

    /// Traps worth touching this round (reference implementation used by
    /// [`Scheduler::run_reference`]): every trap holding a frontier-gate
    /// qubit plus every trap on the shortest route between the two operand
    /// traps of a frontier gate.
    fn relevant_traps_reference(
        &self,
        placement: &Placement,
        frontier: &[Gate],
    ) -> HashSet<TrapId> {
        let mut relevant = HashSet::new();
        for gate in frontier {
            let Some((a, b)) = gate.two_qubit_pair() else { continue };
            let (Some(ta), Some(tb)) = (placement.trap_of(a), placement.trap_of(b)) else {
                continue;
            };
            for t in self.router.path(ta, tb) {
                relevant.insert(t);
            }
        }
        relevant
    }

    /// Valid generic swaps touching a relevant trap (reference
    /// implementation used by [`Scheduler::run_reference`]).
    fn candidates_reference(
        &self,
        placement: &Placement,
        relevant: &HashSet<TrapId>,
        recent: &VecDeque<(SlotId, SlotId)>,
    ) -> Vec<GenericSwap> {
        GenericSwap::candidates(self.graph, placement)
            .into_iter()
            .filter(|s| {
                relevant.contains(&self.graph.slot_trap(s.a))
                    || relevant.contains(&self.graph.slot_trap(s.b))
            })
            .filter(|s| {
                !recent.iter().any(|&(a, b)| (a == s.a && b == s.b) || (a == s.b && b == s.a))
            })
            .filter(|s| self.reorder_is_purposeful(placement, s))
            .collect()
    }

    /// Reorders only matter when they push either the space or the moved
    /// ion towards a chain end (a shuttle port) — anything else shuffles
    /// the interior without affecting routing. SWAP gates and shuttles are
    /// always considered.
    fn reorder_is_purposeful(&self, placement: &Placement, swap: &GenericSwap) -> bool {
        if swap.kind != GenericSwapKind::Reorder {
            return true;
        }
        // After the exchange the space sits where the qubit was and vice versa.
        let (space_slot, qubit_slot) =
            if placement.is_space(swap.a) { (swap.a, swap.b) } else { (swap.b, swap.a) };
        let trap = self.graph.topology().trap(self.graph.slot_trap(space_slot));
        let space_moves_out =
            trap.distance_to_nearest_end(qubit_slot) < trap.distance_to_nearest_end(space_slot);
        let qubit_moves_out =
            trap.distance_to_nearest_end(space_slot) < trap.distance_to_nearest_end(qubit_slot);
        space_moves_out || qubit_moves_out
    }

    /// Applies a chosen generic swap: mutates the placement, emits the
    /// corresponding hardware operation and marks the moved qubits in the
    /// decay tracker. `recorder` (taken out of `self` by the caller to
    /// sidestep the shared borrow — `run_reference` always passes `None`)
    /// logs executed shuttles.
    fn apply_swap(
        &self,
        swap: &GenericSwap,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        decay: &mut DecayTracker,
        mechanics: &Mechanics<'_>,
        recorder: Option<&mut FlightRecorder>,
    ) {
        for q in swap.moved_qubits(placement) {
            decay.mark(q);
        }
        match swap.kind {
            GenericSwapKind::SwapGate => {
                let a = placement.occupant(swap.a).expect("swap-gate endpoints hold qubits");
                let b = placement.occupant(swap.b).expect("swap-gate endpoints hold qubits");
                let trap = self.graph.slot_trap(swap.a);
                program.push(ScheduledOp::SwapGate {
                    a,
                    b,
                    trap,
                    chain_len: placement.trap_occupancy(trap),
                    ion_distance: mechanics.ion_distance(placement, swap.a, swap.b),
                });
                placement.swap_slots(swap.a, swap.b);
            }
            GenericSwapKind::Reorder => {
                let trap = self.graph.slot_trap(swap.a);
                program.push(ScheduledOp::IonReorder { trap, steps: 1 });
                placement.swap_slots(swap.a, swap.b);
            }
            GenericSwapKind::Shuttle { junctions } => {
                let (from_slot, to_slot) = if placement.occupant(swap.a).is_some() {
                    (swap.a, swap.b)
                } else {
                    (swap.b, swap.a)
                };
                let qubit = placement.occupant(from_slot).expect("shuttle moves a qubit");
                let from_trap = self.graph.slot_trap(from_slot);
                let to_trap = self.graph.slot_trap(to_slot);
                let source_chain_len = placement.trap_occupancy(from_trap);
                let dest_chain_len = placement.trap_occupancy(to_trap) + 1;
                placement.swap_slots(from_slot, to_slot);
                if let Some(rec) = recorder {
                    rec.record(FlightEvent::Shuttle {
                        qubit: qubit.0 as u64,
                        from_trap: from_trap.index() as u64,
                        to_trap: to_trap.index() as u64,
                        junctions: junctions as u64,
                        source_chain_len: source_chain_len as u64,
                        dest_chain_len: dest_chain_len as u64,
                    });
                }
                program.push(ScheduledOp::Shuttle {
                    qubit,
                    from_trap,
                    to_trap,
                    junctions,
                    segments: 1,
                    source_chain_len,
                    dest_chain_len,
                });
            }
        }
    }
}

/// Bumps the score cache's trap epochs after `swap` was applied: reorders
/// and shuttles change which slots of their trap(s) are occupied; SWAP
/// gates exchange two ions between occupied slots and leave the occupancy
/// pattern untouched.
fn bump_swap_epochs(cache: &mut ScoreCache, graph: &SlotGraph, swap: &GenericSwap) {
    match swap.kind {
        GenericSwapKind::SwapGate => {}
        GenericSwapKind::Reorder => cache.bump_trap(graph.slot_trap(swap.a)),
        GenericSwapKind::Shuttle { .. } => {
            cache.bump_trap(graph.slot_trap(swap.a));
            cache.bump_trap(graph.slot_trap(swap.b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial;
    use ssync_arch::QccdTopology;
    use ssync_circuit::generators::{qft, random_two_qubit_circuit};
    use ssync_circuit::Qubit;

    fn compile(
        circuit: &Circuit,
        topo: &QccdTopology,
        config: &CompilerConfig,
    ) -> (CompiledProgram, SchedulerStats) {
        let device = Device::build(topo.clone(), config.weights);
        let placement = initial::build_placement(circuit, &device, config);
        let mut scheduler = Scheduler::new(&device, config);
        let (program, final_placement) = scheduler.run(circuit, placement).unwrap();
        final_placement.validate().unwrap();
        (program, scheduler.stats())
    }

    #[test]
    fn all_gates_of_a_small_circuit_are_scheduled() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1));
        c.cx(Qubit(2), Qubit(3));
        c.cx(Qubit(1), Qubit(2));
        c.cx(Qubit(0), Qubit(3));
        let topo = QccdTopology::linear(2, 3);
        let (program, _) = compile(&c, &topo, &CompilerConfig::default());
        assert_eq!(program.counts().two_qubit_gates, 4);
    }

    #[test]
    fn colocated_circuit_needs_no_shuttles() {
        let mut c = Circuit::new(4);
        for i in 0..3u32 {
            c.cx(Qubit(i), Qubit(i + 1));
        }
        // Everything fits into a single trap under the gathering mapping.
        let topo = QccdTopology::linear(2, 6);
        let (program, _) = compile(&c, &topo, &CompilerConfig::default());
        assert_eq!(program.counts().shuttles, 0);
        assert_eq!(program.counts().two_qubit_gates, 3);
    }

    #[test]
    fn cross_trap_gate_forces_exactly_one_shuttle() {
        let mut c = Circuit::new(2);
        c.cx(Qubit(0), Qubit(1));
        let topo = QccdTopology::linear(2, 3);
        let config = CompilerConfig::default()
            .with_initial_mapping(crate::config::InitialMapping::EvenDivided);
        let (program, _) = compile(&c, &topo, &config);
        assert_eq!(program.counts().two_qubit_gates, 1);
        assert_eq!(program.counts().shuttles, 1);
    }

    #[test]
    fn qft_schedules_completely_on_every_topology() {
        let circuit = qft(10);
        for topo in [
            QccdTopology::linear(2, 8),
            QccdTopology::grid(2, 2, 5),
            QccdTopology::fully_connected(3, 6),
        ] {
            let (program, _) = compile(&circuit, &topo, &CompilerConfig::default());
            assert_eq!(
                program.counts().two_qubit_gates,
                circuit.two_qubit_gate_count(),
                "{}",
                topo.name()
            );
        }
    }

    #[test]
    fn random_circuits_schedule_on_tight_devices() {
        for seed in 0..5u64 {
            let circuit = random_two_qubit_circuit(12, 60, seed);
            let topo = QccdTopology::grid(2, 2, 4); // 16 slots for 12 qubits
            let (program, _) = compile(&circuit, &topo, &CompilerConfig::default());
            assert_eq!(program.counts().two_qubit_gates, 60, "seed {seed}");
        }
    }

    #[test]
    fn single_qubit_gates_are_preserved() {
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.h(Qubit(1));
        c.cx(Qubit(0), Qubit(2));
        let topo = QccdTopology::linear(2, 3);
        let (program, _) = compile(&c, &topo, &CompilerConfig::default());
        assert_eq!(program.counts().single_qubit_gates, 2);
    }

    #[test]
    fn heuristic_handles_most_routing_without_fallback() {
        let circuit = qft(16);
        let topo = QccdTopology::grid(2, 2, 6);
        let (_, stats) = compile(&circuit, &topo, &CompilerConfig::default());
        assert!(stats.heuristic_swaps > 0);
        // The fallback is a safety net; the heuristic should carry the bulk.
        assert!(
            stats.fallback_routed_gates * 10 <= circuit.two_qubit_gate_count(),
            "fallback used too often: {} of {} gates",
            stats.fallback_routed_gates,
            circuit.two_qubit_gate_count()
        );
    }

    #[test]
    fn scheduler_reports_stats() {
        let circuit = qft(8);
        let topo = QccdTopology::linear(2, 6);
        let (_, stats) = compile(&circuit, &topo, &CompilerConfig::default());
        assert!(stats.iterations > 0);
    }

    #[test]
    fn optimized_and_reference_runs_are_bit_identical() {
        let config = CompilerConfig::default();
        for (circuit, topo) in [
            (qft(12), QccdTopology::grid(2, 2, 5)),
            (random_two_qubit_circuit(10, 80, 3), QccdTopology::linear(3, 5)),
        ] {
            let device = Device::build(topo.clone(), config.weights);
            let placement = initial::build_placement(&circuit, &device, &config);
            let mut scheduler = Scheduler::new(&device, &config);
            let (fast, fast_placement) = scheduler.run(&circuit, placement.clone()).unwrap();
            let fast_stats = scheduler.stats();
            let (slow, slow_placement) = scheduler.run_reference(&circuit, placement).unwrap();
            let slow_stats = scheduler.stats();
            assert_eq!(fast.ops(), slow.ops(), "{}", topo.name());
            assert_eq!(fast_stats, slow_stats, "{}", topo.name());
            assert_eq!(fast_placement, slow_placement, "{}", topo.name());
        }
    }

    #[test]
    fn flight_recorder_is_observation_only() {
        let circuit = qft(12);
        let topo = QccdTopology::grid(2, 2, 5);
        let config = CompilerConfig::default();
        let recording_config = config.with_flight_recorder(true);
        let device = Device::build(topo, config.weights);
        let placement = initial::build_placement(&circuit, &device, &config);

        let mut plain = Scheduler::new(&device, &config);
        let (base_program, base_placement) = plain.run(&circuit, placement.clone()).unwrap();
        let base_stats = plain.stats();
        assert!(plain.take_recording().is_none(), "recorder off records nothing");

        let mut recording = Scheduler::new(&device, &recording_config);
        let (rec_program, rec_placement) = recording.run(&circuit, placement.clone()).unwrap();
        assert_eq!(base_program.ops(), rec_program.ops(), "recorder changed compiled output");
        assert_eq!(base_placement, rec_placement);
        assert_eq!(base_stats, recording.stats());
        let stream = recording.take_recording().expect("recorder on yields a recording");
        assert!(!stream.events.is_empty());
        assert!(stream.events.iter().any(|e| matches!(e, FlightEvent::CandidateChosen { .. })));
        assert!(stream.events.iter().any(|e| matches!(e, FlightEvent::LayerClosed { .. })));
        assert!(recording.take_recording().is_none(), "take_recording drains");

        // run_reference never records, even with the flag on.
        let (ref_program, _) = recording.run_reference(&circuit, placement).unwrap();
        assert_eq!(base_program.ops(), ref_program.ops());
        assert!(recording.take_recording().is_none());
    }

    #[test]
    fn scheduler_scratch_is_reusable_across_runs() {
        let config = CompilerConfig::default();
        let topo = QccdTopology::grid(2, 2, 5);
        let device = Device::build(topo, config.weights);
        let mut scheduler = Scheduler::new(&device, &config);
        let circuit = qft(10);
        let placement = initial::build_placement(&circuit, &device, &config);
        let (first, _) = scheduler.run(&circuit, placement.clone()).unwrap();
        let (second, _) = scheduler.run(&circuit, placement).unwrap();
        assert_eq!(first.ops(), second.ops());
    }

    #[test]
    fn recovered_scratch_is_reusable_across_different_devices() {
        // A worker's scratch hops between devices of different sizes; the
        // output on each must match a fresh-scratch scheduler exactly.
        let config = CompilerConfig::default();
        let circuit = qft(10);
        let mut scratch = SchedulerScratch::default();
        for topo in
            [QccdTopology::grid(2, 2, 5), QccdTopology::linear(2, 8), QccdTopology::grid(3, 3, 4)]
        {
            let device = Device::build(topo.clone(), config.weights);
            let placement = initial::build_placement(&circuit, &device, &config);
            let (fresh, _) =
                Scheduler::new(&device, &config).run(&circuit, placement.clone()).unwrap();
            let mut scheduler = Scheduler::with_scratch(&device, &config, scratch);
            let (reused, _) = scheduler.run(&circuit, placement).unwrap();
            scratch = scheduler.into_scratch();
            assert_eq!(fresh.ops(), reused.ops(), "{}", topo.name());
        }
    }
}
