//! Idealised execution modes for the optimality study (Fig. 16).
//!
//! The paper compares S-SYNC against three brute-force upper bounds:
//!
//! * **perfect SWAP** — every ion that needs to shuttle is already at a
//!   chain end, so SWAP gates (and the reorders that substitute for them)
//!   cost nothing,
//! * **perfect shuttle** — every move is "fully compatible": shuttles cost
//!   neither time nor heating,
//! * **ideal** — both at once: only the program's own gates remain.
//!
//! They are implemented as post-processing filters over a compiled
//! program, which is exactly how an upper bound behaves: the schedule is
//! unchanged but the corresponding overhead is waived.

use serde::{Deserialize, Serialize};
use ssync_sim::{CompiledProgram, ScheduledOp};

/// Which overheads to waive when evaluating a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum IdealizationMode {
    /// No idealisation: the program is evaluated as compiled.
    #[default]
    None,
    /// Shuttles are free (no transport time, no heating).
    PerfectShuttle,
    /// SWAP gates and reorders are free.
    PerfectSwap,
    /// Both shuttles and SWAPs are free; only program gates remain.
    Ideal,
}

impl IdealizationMode {
    /// The four modes in the order plotted in Fig. 16.
    pub const ALL: [IdealizationMode; 4] = [
        IdealizationMode::Ideal,
        IdealizationMode::PerfectShuttle,
        IdealizationMode::PerfectSwap,
        IdealizationMode::None,
    ];

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            IdealizationMode::None => "S-SYNC",
            IdealizationMode::PerfectShuttle => "Perfect Shuttle",
            IdealizationMode::PerfectSwap => "Perfect SWAP",
            IdealizationMode::Ideal => "Ideal",
        }
    }

    /// Applies the idealisation: returns a copy of `program` with the
    /// waived operations removed.
    pub fn apply(self, program: &CompiledProgram) -> CompiledProgram {
        let drop_shuttle =
            matches!(self, IdealizationMode::PerfectShuttle | IdealizationMode::Ideal);
        let drop_swaps = matches!(self, IdealizationMode::PerfectSwap | IdealizationMode::Ideal);
        let mut out = CompiledProgram::new(program.num_qubits(), program.num_traps());
        for op in program.ops() {
            let keep = match op {
                ScheduledOp::Shuttle { .. } => !drop_shuttle,
                ScheduledOp::SwapGate { .. } | ScheduledOp::IonReorder { .. } => !drop_swaps,
                _ => true,
            };
            if keep {
                out.push(*op);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::TrapId;
    use ssync_circuit::Qubit;

    fn sample() -> CompiledProgram {
        let mut p = CompiledProgram::new(2, 2);
        p.push(ScheduledOp::TwoQubitGate {
            a: Qubit(0),
            b: Qubit(1),
            trap: TrapId(0),
            chain_len: 2,
            ion_distance: 1,
        });
        p.push(ScheduledOp::SwapGate {
            a: Qubit(0),
            b: Qubit(1),
            trap: TrapId(0),
            chain_len: 2,
            ion_distance: 1,
        });
        p.push(ScheduledOp::IonReorder { trap: TrapId(0), steps: 1 });
        p.push(ScheduledOp::Shuttle {
            qubit: Qubit(0),
            from_trap: TrapId(0),
            to_trap: TrapId(1),
            junctions: 0,
            segments: 1,
            source_chain_len: 2,
            dest_chain_len: 1,
        });
        p
    }

    #[test]
    fn none_keeps_everything() {
        let p = sample();
        assert_eq!(IdealizationMode::None.apply(&p).len(), p.len());
    }

    #[test]
    fn perfect_shuttle_drops_only_shuttles() {
        let out = IdealizationMode::PerfectShuttle.apply(&sample());
        let c = out.counts();
        assert_eq!(c.shuttles, 0);
        assert_eq!(c.swap_gates, 1);
        assert_eq!(c.two_qubit_gates, 1);
    }

    #[test]
    fn perfect_swap_drops_swaps_and_reorders() {
        let out = IdealizationMode::PerfectSwap.apply(&sample());
        let c = out.counts();
        assert_eq!(c.swap_gates, 0);
        assert_eq!(c.reorders, 0);
        assert_eq!(c.shuttles, 1);
    }

    #[test]
    fn ideal_keeps_only_program_gates() {
        let out = IdealizationMode::Ideal.apply(&sample());
        let c = out.counts();
        assert_eq!(c.shuttles + c.swap_gates + c.reorders, 0);
        assert_eq!(c.two_qubit_gates, 1);
    }

    #[test]
    fn labels_match_fig16_legend() {
        assert_eq!(IdealizationMode::Ideal.label(), "Ideal");
        assert_eq!(IdealizationMode::None.label(), "S-SYNC");
        assert_eq!(IdealizationMode::ALL.len(), 4);
    }
}
