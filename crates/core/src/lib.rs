//! # ssync-core
//!
//! The S-SYNC compiler: shuttle and SWAP co-optimisation for Quantum
//! Charge-Coupled Device (QCCD) trapped-ion machines, reproducing the
//! ISCA 2025 paper "S-SYNC: Shuttle and Swap Co-Optimization in Quantum
//! Charge-Coupled Devices".
//!
//! The compiler pipeline (Fig. 1 of the paper):
//!
//! 1. **Pre-processing** — the input circuit becomes a dependency DAG and
//!    the QCCD device becomes a *static* weighted slot graph
//!    ([`ssync_arch::SlotGraph`]) in which empty spaces are first-class
//!    nodes.
//! 2. **Initial mapping** — a two-level scheme: first-level trap assignment
//!    ([`InitialMapping::EvenDivided`], [`InitialMapping::Gathering`],
//!    [`InitialMapping::Sta`]) and an intra-trap "mountain" ordering driven
//!    by the look-ahead score of Eq. (3).
//! 3. **Generic-swap scheduling** — Algorithm 1: whenever no frontier gate
//!    is executable, enumerate the valid generic swaps (SWAP gates,
//!    intra-trap reorders, shuttles), score each with the heuristic of
//!    Eqs. (1)–(2) (distance + full-trap penalty, with a decay term that
//!    spreads work across qubits) and apply the cheapest.
//!
//! ## Quickstart
//!
//! ```
//! use ssync_circuit::generators::qft;
//! use ssync_arch::QccdTopology;
//! use ssync_core::{CompilerConfig, SSyncCompiler};
//!
//! let circuit = qft(12);
//! let topology = QccdTopology::linear(2, 8);
//! let compiler = SSyncCompiler::new(CompilerConfig::default());
//! let outcome = compiler.compile(&circuit, &topology).unwrap();
//! assert_eq!(outcome.counts().two_qubit_gates, circuit.two_qubit_gate_count());
//! assert!(outcome.report().success_rate > 0.0);
//! ```
//!
//! ## Compiling many circuits over one device
//!
//! Sweeps should build the shared [`ssync_arch::Device`] artifact once and
//! fan the independent compilations out with
//! [`SSyncCompiler::compile_batch`]:
//!
//! ```
//! use ssync_circuit::generators::qft;
//! use ssync_arch::{Device, QccdTopology};
//! use ssync_core::{CompilerConfig, SSyncCompiler};
//!
//! let config = CompilerConfig::default();
//! let device = Device::build(QccdTopology::linear(2, 8), config.weights);
//! let circuits: Vec<_> = (8..=12).map(|n| qft(n)).collect();
//! let compiler = SSyncCompiler::new(config);
//! let outcomes = compiler.compile_batch(&device, &circuits);
//! assert_eq!(outcomes.len(), circuits.len()); // input order, any worker count
//! assert!(outcomes.iter().all(|o| o.is_ok()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod compiler;
mod config;
mod error;
mod generic_swap;
mod heuristic;
mod idealized;
pub mod initial;
pub mod mechanics;
pub mod par_score;
mod perm_route;
mod scheduler;
mod swap_schedule;

pub use compiler::{CompileOutcome, CompileScratch, SSyncCompiler};
pub use config::{CacheBounds, CompilerConfig, InitialMapping};
pub use error::CompileError;
pub use generic_swap::{GenericSwap, GenericSwapKind};
pub use heuristic::{DecayTracker, HeuristicScorer, ScoreCache, ScoreShard, ScoringScratch};
pub use idealized::IdealizationMode;
pub use par_score::{
    budget_scoring_threads, resolve_scoring_threads, ScoringTelemetry, SCORE_THREADS_ENV,
};
pub use perm_route::{meeting_cost, swap_cost, PermRouteCompiler};
pub use scheduler::{Scheduler, SchedulerScratch, SchedulerStats};
pub use swap_schedule::{BubbleSort, RecursiveSplitTwo, SwapSchedule, SwapScheduleKind};
