//! Initial qubit mapping (Sec. 3.4): a two-level scheme.
//!
//! * **First level** ([`first_level`]) assigns program qubits to traps:
//!   even-divided, gathering, or STA (spatio-temporal-aware).
//! * **Second level** ([`intra`]) orders the qubits inside each trap into a
//!   "mountain" shape driven by the look-ahead score `l(q) = −αE(q) + βI(q)`
//!   (Eq. 3): qubits likely to leave the trap soon sit near the chain ends,
//!   qubits that mostly interact locally sit in the middle.

pub mod first_level;
pub mod intra;

use crate::config::CompilerConfig;
use ssync_arch::{Device, Placement};
use ssync_circuit::Circuit;

/// Builds the complete initial placement for `circuit` on the shared
/// `device` artifact, using the strategy selected in `config`. Trap
/// routes needed by the STA mapping come from the device's prebuilt
/// [`ssync_arch::TrapRouter`] — nothing is recomputed per placement.
///
/// # Panics
///
/// Panics if the device has fewer slots than the circuit has qubits (the
/// compiler front-end validates this before calling).
pub fn build_placement(circuit: &Circuit, device: &Device, config: &CompilerConfig) -> Placement {
    let topology = device.topology();
    assert!(
        topology.num_slots() >= circuit.num_qubits(),
        "device has {} slots but the circuit needs {}",
        topology.num_slots(),
        circuit.num_qubits()
    );
    let groups = first_level::assign_traps(circuit, device, config);
    let mut placement = Placement::new(topology, circuit.num_qubits());
    for (trap_idx, qubits) in groups.iter().enumerate() {
        let trap = topology.traps()[trap_idx].id();
        let ordered = intra::mountain_order(circuit, qubits, config);
        let slots = intra::slot_layout(topology.trap(trap), ordered.len());
        for (qubit, slot) in ordered.into_iter().zip(slots) {
            placement.place(qubit, slot);
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitialMapping;
    use ssync_arch::{QccdTopology, WeightConfig};
    use ssync_circuit::generators::qft;

    fn device(topo: QccdTopology) -> Device {
        Device::build(topo, WeightConfig::default())
    }

    #[test]
    fn every_strategy_places_every_qubit() {
        let circuit = qft(20);
        let topo = QccdTopology::grid(2, 3, 8);
        for mapping in InitialMapping::ALL {
            let config = CompilerConfig::default().with_initial_mapping(mapping);
            let placement = build_placement(&circuit, &device(topo.clone()), &config);
            assert!(placement.is_complete(), "{mapping:?}");
            placement.validate().unwrap();
        }
    }

    #[test]
    fn gathering_uses_fewer_traps_than_even_divided() {
        let circuit = qft(12);
        let topo = QccdTopology::linear(4, 16);
        let d = device(topo.clone());
        let gathering = build_placement(
            &circuit,
            &d,
            &CompilerConfig::default().with_initial_mapping(InitialMapping::Gathering),
        );
        let even = build_placement(
            &circuit,
            &d,
            &CompilerConfig::default().with_initial_mapping(InitialMapping::EvenDivided),
        );
        let used =
            |p: &Placement| topo.traps().iter().filter(|t| p.trap_occupancy(t.id()) > 0).count();
        assert!(used(&gathering) < used(&even));
    }

    #[test]
    fn no_trap_is_overfilled_and_a_space_remains_where_possible() {
        let circuit = qft(30);
        let topo = QccdTopology::grid(2, 2, 16);
        for mapping in InitialMapping::ALL {
            let config = CompilerConfig::default().with_initial_mapping(mapping);
            let p = build_placement(&circuit, &device(topo.clone()), &config);
            for trap in topo.traps() {
                assert!(p.trap_occupancy(trap.id()) <= trap.capacity());
            }
            // The device has 64 slots for 30 qubits: at least one trap must
            // keep room for incoming ions.
            assert!(p.full_trap_count() < topo.num_traps());
        }
    }

    #[test]
    #[should_panic(expected = "device has")]
    fn too_small_device_panics() {
        let circuit = qft(30);
        let topo = QccdTopology::linear(2, 8);
        build_placement(&circuit, &device(topo), &CompilerConfig::default());
    }
}
