//! Second-level initial mapping: intra-trap "mountain" ordering (Eq. 3).

use crate::config::CompilerConfig;
use ssync_arch::{SlotId, Trap};
use ssync_circuit::{Circuit, Layers, Qubit};
use std::collections::HashSet;

/// The per-qubit location score of Eq. (3): `l(q) = −α·E(q) + β·I(q)`,
/// where over the first `k` DAG layers `I(q)` counts two-qubit gates
/// pairing `q` with a qubit of the *same* trap and `E(q)` counts gates
/// pairing it with a qubit of *another* trap. Lower scores mean the qubit
/// is likely to leave the trap soon and should sit near a chain end.
pub fn location_score(
    circuit: &Circuit,
    trap_members: &HashSet<Qubit>,
    qubit: Qubit,
    config: &CompilerConfig,
) -> f64 {
    let layers = Layers::from_circuit(circuit);
    let window = layers.first_k(config.lookahead_layers);
    let mut internal = 0usize;
    let mut external = 0usize;
    for gate in window {
        if let Some((a, b)) = gate.two_qubit_pair() {
            let partner = if a == qubit {
                Some(b)
            } else if b == qubit {
                Some(a)
            } else {
                None
            };
            if let Some(p) = partner {
                if trap_members.contains(&p) {
                    internal += 1;
                } else {
                    external += 1;
                }
            }
        }
    }
    -config.alpha * external as f64 + config.beta * internal as f64
}

/// Orders the qubits of one trap into the "mountain" shape of Sec. 3.4:
/// the lowest-scoring qubits (those most likely to shuttle away) go to the
/// chain ends, the highest-scoring ones to the centre.
pub fn mountain_order(circuit: &Circuit, members: &[Qubit], config: &CompilerConfig) -> Vec<Qubit> {
    let member_set: HashSet<Qubit> = members.iter().copied().collect();
    let mut scored: Vec<(f64, Qubit)> =
        members.iter().map(|&q| (location_score(circuit, &member_set, q, config), q)).collect();
    // Ascending score: the first elements are the most "outgoing" qubits.
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = scored.len();
    let mut ordered: Vec<Option<Qubit>> = vec![None; n];
    let mut left = 0usize;
    let mut right = n;
    for (i, (_, q)) in scored.into_iter().enumerate() {
        if i % 2 == 0 {
            ordered[left] = Some(q);
            left += 1;
        } else {
            right -= 1;
            ordered[right] = Some(q);
        }
    }
    ordered.into_iter().map(|q| q.expect("every position filled")).collect()
}

/// Chooses which slots of `trap` the ordered qubits occupy: the qubits sit
/// contiguously with the free slots split between the two chain ends, so
/// both ports stay available for incoming ions.
pub fn slot_layout(trap: &Trap, count: usize) -> Vec<SlotId> {
    assert!(count <= trap.capacity(), "trap cannot hold {count} qubits");
    let free = trap.capacity() - count;
    let left_pad = free / 2;
    (0..count).map(|i| trap.slot_at(left_pad + i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::{QccdTopology, TrapId};

    #[test]
    fn location_score_rewards_internal_partners() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(0), Qubit(1)); // internal pair
        c.cx(Qubit(2), Qubit(3)); // q2's partner is external to the trap
        let members: HashSet<Qubit> = [Qubit(0), Qubit(1), Qubit(2)].into_iter().collect();
        let config = CompilerConfig::default();
        let s_internal = location_score(&c, &members, Qubit(0), &config);
        let s_external = location_score(&c, &members, Qubit(2), &config);
        assert!(s_internal > s_external);
    }

    #[test]
    fn mountain_order_puts_low_scores_at_the_edges() {
        let mut c = Circuit::new(6);
        // Qubit 5 interacts with an external qubit -> lowest score.
        c.cx(Qubit(5), Qubit(0));
        // Qubits 2 and 3 interact internally -> highest scores.
        c.cx(Qubit(2), Qubit(3));
        let members = [Qubit(1), Qubit(2), Qubit(3), Qubit(4), Qubit(5)];
        let config = CompilerConfig::default();
        let order = mountain_order(&c, &members, &config);
        assert_eq!(order.len(), 5);
        // The most external qubit must be at one of the two chain ends.
        assert!(order[0] == Qubit(5) || order[4] == Qubit(5));
        // The internal pair must not be at the extreme ends.
        let centre: Vec<Qubit> = order[1..4].to_vec();
        assert!(centre.contains(&Qubit(2)) || centre.contains(&Qubit(3)));
    }

    #[test]
    fn mountain_order_is_a_permutation() {
        let c = Circuit::new(8);
        let members: Vec<Qubit> = (0..8u32).map(Qubit).collect();
        let order = mountain_order(&c, &members, &CompilerConfig::default());
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, members);
    }

    #[test]
    fn slot_layout_centres_qubits_between_free_ends() {
        let topo = QccdTopology::linear(1, 6);
        let trap = topo.trap(TrapId(0));
        let slots = slot_layout(trap, 4);
        assert_eq!(slots.len(), 4);
        // One free slot on the left, one on the right.
        assert_eq!(slots[0], trap.slot_at(1));
        assert_eq!(slots[3], trap.slot_at(4));
        // Full trap uses every slot.
        assert_eq!(slot_layout(trap, 6).len(), 6);
        assert_eq!(slot_layout(trap, 6)[0], trap.slot_at(0));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn slot_layout_rejects_overfill() {
        let topo = QccdTopology::linear(1, 3);
        slot_layout(topo.trap(TrapId(0)), 4);
    }
}
