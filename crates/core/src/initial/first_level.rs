//! First-level initial mapping: assigning program qubits to traps.

use crate::config::{CompilerConfig, InitialMapping};
use ssync_arch::{Device, QccdTopology, TrapRouter};
use ssync_circuit::{Circuit, InteractionGraph, Qubit};

/// Assigns every program qubit of `circuit` to a trap, returning one qubit
/// list per trap (indexed by trap id). The per-trap lists respect trap
/// capacities; when the device has spare room each trap keeps at least one
/// free slot so it can receive shuttled ions. Trap distances needed by the
/// STA strategy are read from the device's shared router.
pub fn assign_traps(
    circuit: &Circuit,
    device: &Device,
    config: &CompilerConfig,
) -> Vec<Vec<Qubit>> {
    let topology = device.topology();
    match config.initial_mapping {
        InitialMapping::EvenDivided => even_divided(circuit, topology),
        InitialMapping::Gathering => gathering(circuit, topology),
        InitialMapping::Sta => sta(circuit, topology, device.router()),
    }
}

/// The capacity each trap offers to the initial mapping: one slot is
/// reserved for incoming ions whenever the device as a whole has room.
fn usable_capacity(topology: &QccdTopology, num_qubits: usize) -> Vec<usize> {
    let total = topology.total_capacity();
    let reserve = total > num_qubits + topology.num_traps() / 2;
    topology
        .traps()
        .iter()
        .map(|t| if reserve { t.capacity().saturating_sub(1) } else { t.capacity() })
        .collect()
}

/// Qubits ordered by their first appearance in the circuit; qubits never
/// used come last in index order.
fn qubits_by_first_use(circuit: &Circuit) -> Vec<Qubit> {
    let n = circuit.num_qubits();
    let mut first_use = vec![usize::MAX; n];
    for (i, gate) in circuit.iter().enumerate() {
        for q in gate.qubits() {
            if first_use[q.index()] == usize::MAX {
                first_use[q.index()] = i;
            }
        }
    }
    let mut order: Vec<Qubit> = (0..n as u32).map(Qubit).collect();
    order.sort_by_key(|q| (first_use[q.index()], q.0));
    order
}

/// Even-divided mapping: spread the qubits uniformly over every trap
/// (round-robin in program-qubit order), inspired by distributed-NISQ
/// compilers.
fn even_divided(circuit: &Circuit, topology: &QccdTopology) -> Vec<Vec<Qubit>> {
    let n = circuit.num_qubits();
    let caps = usable_capacity(topology, n);
    let num_traps = topology.num_traps();
    let mut groups: Vec<Vec<Qubit>> = vec![Vec::new(); num_traps];
    let mut trap = 0usize;
    for q in (0..n as u32).map(Qubit) {
        // Find the next trap (round-robin) with room.
        let mut attempts = 0;
        while groups[trap].len() >= caps[trap] && attempts < num_traps {
            trap = (trap + 1) % num_traps;
            attempts += 1;
        }
        if groups[trap].len() >= caps[trap] {
            // Every trap hit its soft cap: fall back to hard capacities.
            let fallback = (0..num_traps)
                .find(|&t| groups[t].len() < topology.traps()[t].capacity())
                .expect("device has room for every qubit");
            groups[fallback].push(q);
        } else {
            groups[trap].push(q);
            trap = (trap + 1) % num_traps;
        }
    }
    groups
}

/// Gathering mapping: cluster qubits into as few traps as possible (in
/// first-use order), leaving one reserved space per trap.
fn gathering(circuit: &Circuit, topology: &QccdTopology) -> Vec<Vec<Qubit>> {
    let n = circuit.num_qubits();
    let caps = usable_capacity(topology, n);
    let num_traps = topology.num_traps();
    let mut groups: Vec<Vec<Qubit>> = vec![Vec::new(); num_traps];
    let mut trap = 0usize;
    for q in qubits_by_first_use(circuit) {
        while trap < num_traps && groups[trap].len() >= caps[trap] {
            trap += 1;
        }
        if trap >= num_traps {
            // Soft caps exhausted: place into any trap with hard room.
            let fallback = (0..num_traps)
                .find(|&t| groups[t].len() < topology.traps()[t].capacity())
                .expect("device has room for every qubit");
            groups[fallback].push(q);
        } else {
            groups[trap].push(q);
        }
    }
    groups
}

/// STA mapping (Ovide et al. 2024): qubits with stronger and earlier
/// interactions are packed into the same or neighbouring traps. Greedy:
/// qubits are visited in first-use order and each is assigned to the trap
/// that maximises its temporally-discounted attachment to already-placed
/// partners, discounted by the trap distance (read from the device's
/// shared `router`).
fn sta(circuit: &Circuit, topology: &QccdTopology, router: &TrapRouter) -> Vec<Vec<Qubit>> {
    let n = circuit.num_qubits();
    let caps = usable_capacity(topology, n);
    let num_traps = topology.num_traps();
    let interactions = InteractionGraph::with_temporal_discount(circuit, 0.01);
    let mut groups: Vec<Vec<Qubit>> = vec![Vec::new(); num_traps];
    let mut trap_of: Vec<Option<usize>> = vec![None; n];

    for q in qubits_by_first_use(circuit) {
        let mut best_trap = None;
        let mut best_score = f64::NEG_INFINITY;
        for t in 0..num_traps {
            if groups[t].len() >= caps[t] {
                continue;
            }
            // Attachment to already-placed partners, attenuated by distance.
            let mut score = 0.0;
            for (p, placed_trap) in trap_of.iter().enumerate() {
                if let Some(pt) = placed_trap {
                    let w = interactions.weight(q, Qubit(p as u32));
                    if w > 0.0 {
                        let hops = router.hops(topology.traps()[t].id(), topology.traps()[*pt].id())
                            as f64;
                        score += w / (1.0 + hops);
                    }
                }
            }
            // Light preference for lower-indexed, partially-filled traps so
            // isolated qubits still cluster instead of scattering.
            score += 0.01 * groups[t].len() as f64 - 0.001 * t as f64;
            if score > best_score {
                best_score = score;
                best_trap = Some(t);
            }
        }
        let t = best_trap.unwrap_or_else(|| {
            (0..num_traps)
                .find(|&t| groups[t].len() < topology.traps()[t].capacity())
                .expect("device has room for every qubit")
        });
        groups[t].push(q);
        trap_of[q.index()] = Some(t);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_circuit::generators::{qaoa_nearest_neighbor, qft};

    fn total_assigned(groups: &[Vec<Qubit>]) -> usize {
        groups.iter().map(Vec::len).sum()
    }

    #[test]
    fn even_divided_spreads_across_all_traps() {
        let circuit = qft(16);
        let topo = QccdTopology::linear(4, 8);
        let groups = even_divided(&circuit, &topo);
        assert_eq!(total_assigned(&groups), 16);
        assert!(groups.iter().all(|g| !g.is_empty()));
        let max = groups.iter().map(Vec::len).max().unwrap();
        let min = groups.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn gathering_fills_traps_in_order() {
        let circuit = qft(16);
        let topo = QccdTopology::linear(4, 10);
        let groups = gathering(&circuit, &topo);
        assert_eq!(total_assigned(&groups), 16);
        assert_eq!(groups[0].len(), 9); // capacity 10 minus one reserved space
        assert_eq!(groups[1].len(), 7);
        assert!(groups[2].is_empty() && groups[3].is_empty());
    }

    #[test]
    fn sta_keeps_interacting_neighbors_together() {
        let circuit = qaoa_nearest_neighbor(12, 2);
        let topo = QccdTopology::linear(3, 6);
        let config = CompilerConfig::default();
        let router = TrapRouter::new(&topo, config.weights);
        let groups = sta(&circuit, &topo, &router);
        assert_eq!(total_assigned(&groups), 12);
        // Nearest-neighbour chains should mostly keep consecutive qubits in
        // the same trap: count cut edges (consecutive qubits in different traps).
        let mut trap_of = [0usize; 12];
        for (t, g) in groups.iter().enumerate() {
            for q in g {
                trap_of[q.index()] = t;
            }
        }
        let cuts = (0..11).filter(|&i| trap_of[i] != trap_of[i + 1]).count();
        assert!(cuts <= 4, "too many cut edges: {cuts}");
    }

    #[test]
    fn capacities_are_never_exceeded() {
        let circuit = qft(30);
        let topo = QccdTopology::grid(2, 2, 8); // 32 slots, tight fit
        let config = CompilerConfig::default();
        let router = TrapRouter::new(&topo, config.weights);
        for groups in [
            even_divided(&circuit, &topo),
            gathering(&circuit, &topo),
            sta(&circuit, &topo, &router),
        ] {
            assert_eq!(total_assigned(&groups), 30);
            for (g, trap) in groups.iter().zip(topo.traps()) {
                assert!(g.len() <= trap.capacity());
            }
        }
    }

    #[test]
    fn first_use_ordering_prefers_earlier_qubits() {
        let mut c = Circuit::new(4);
        c.cx(Qubit(2), Qubit(3));
        c.cx(Qubit(0), Qubit(1));
        let order = qubits_by_first_use(&c);
        assert_eq!(order[0], Qubit(2));
        assert_eq!(order[1], Qubit(3));
    }
}
