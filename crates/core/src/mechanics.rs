//! Low-level placement mechanics shared by the S-SYNC scheduler, its
//! deterministic fallback router and the baseline compilers.
//!
//! Every routine mutates a [`Placement`] and appends the corresponding
//! hardware operations to a [`CompiledProgram`], so op counts and the
//! timing/fidelity evaluation stay consistent no matter which compiler
//! produced the movement.

use ssync_arch::{Placement, SlotGraph, SlotId, TrapId, TrapRouter};
use ssync_circuit::Qubit;
use ssync_sim::{CompiledProgram, ScheduledOp};
use std::collections::VecDeque;

/// Placement-mechanics helper bound to a device graph and trap router.
#[derive(Debug, Clone, Copy)]
pub struct Mechanics<'a> {
    graph: &'a SlotGraph,
    router: &'a TrapRouter,
}

impl<'a> Mechanics<'a> {
    /// Creates a mechanics helper for the given device.
    pub fn new(graph: &'a SlotGraph, router: &'a TrapRouter) -> Self {
        Mechanics { graph, router }
    }

    /// The device graph this helper operates on.
    pub fn graph(&self) -> &SlotGraph {
        self.graph
    }

    /// The trap router this helper operates on.
    pub fn router(&self) -> &TrapRouter {
        self.router
    }

    /// Chain distance between two ions of the same trap measured in ions:
    /// adjacent ions have distance 1, with `k` ions strictly between them
    /// the distance is `k + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the slots are in different traps.
    pub fn ion_distance(&self, placement: &Placement, a: SlotId, b: SlotId) -> usize {
        assert!(self.graph.same_trap(a, b), "ion distance requires a single trap");
        if a == b {
            return 0;
        }
        let trap = self.graph.topology().trap(self.graph.slot_trap(a));
        let (pa, pb) = (self.graph.slot_position(a), self.graph.slot_position(b));
        let (lo, hi) = if pa < pb { (pa, pb) } else { (pb, pa) };
        // Trap slots are contiguous: walk the positions directly instead of
        // materialising the slot list.
        let between =
            (lo + 1..hi).filter(|&p| placement.occupant(trap.slot_at(p)).is_some()).count();
        between + 1
    }

    /// Emits a two-qubit gate between `a` and `b`, which must share a trap.
    ///
    /// # Panics
    ///
    /// Panics if the qubits are unplaced or in different traps.
    pub fn emit_two_qubit_gate(
        &self,
        placement: &Placement,
        program: &mut CompiledProgram,
        a: Qubit,
        b: Qubit,
    ) {
        let sa = placement.slot_of(a).expect("qubit a must be placed");
        let sb = placement.slot_of(b).expect("qubit b must be placed");
        assert!(self.graph.same_trap(sa, sb), "two-qubit gate requires a shared trap");
        let trap = self.graph.slot_trap(sa);
        program.push(ScheduledOp::TwoQubitGate {
            a,
            b,
            trap,
            chain_len: placement.trap_occupancy(trap),
            ion_distance: self.ion_distance(placement, sa, sb),
        });
    }

    /// Shifts a space node of the target slot's trap until `target` itself
    /// is empty, using physical reorders only. Returns the number of
    /// single-position shifts performed.
    ///
    /// # Panics
    ///
    /// Panics if the trap has no free slot.
    pub fn free_slot(
        &self,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        target: SlotId,
    ) -> usize {
        if placement.is_space(target) {
            return 0;
        }
        let trap = self.graph.slot_trap(target);
        let trap_ref = self.graph.topology().trap(trap);
        let target_pos = self.graph.slot_position(target);
        // Scan chain positions directly (slots are contiguous) for the
        // space nearest to the target; ties break towards the left end,
        // matching the old chain-ordered `spaces_in_trap` minimum.
        let mut nearest: Option<usize> = None;
        for pos in 0..trap_ref.capacity() {
            if placement.is_space(trap_ref.slot_at(pos)) {
                let d = pos.abs_diff(target_pos);
                if nearest.is_none_or(|best| d < best.abs_diff(target_pos)) {
                    nearest = Some(pos);
                }
            }
        }
        let mut pos = nearest.expect("trap must have a free slot to clear the target");
        let mut steps = 0;
        while pos != target_pos {
            let next = if pos < target_pos { pos + 1 } else { pos - 1 };
            placement.swap_slots(trap_ref.slot_at(pos), trap_ref.slot_at(next));
            program.push(ScheduledOp::IonReorder { trap, steps: 1 });
            pos = next;
            steps += 1;
        }
        steps
    }

    /// Moves `qubit` to `target` within its trap. Passing an empty slot is a
    /// physical reorder; passing an occupied slot inserts a SWAP gate.
    /// Returns the number of inserted SWAP gates.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is unplaced or the target is in another trap.
    pub fn bring_qubit_to_slot(
        &self,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        qubit: Qubit,
        target: SlotId,
    ) -> usize {
        let start = placement.slot_of(qubit).expect("qubit must be placed");
        assert!(self.graph.same_trap(start, target), "target slot must be in the qubit's trap");
        let trap = self.graph.slot_trap(start);
        let trap_ref = self.graph.topology().trap(trap);
        let mut pos = self.graph.slot_position(start);
        let target_pos = self.graph.slot_position(target);
        let mut swaps = 0;
        while pos != target_pos {
            let next = if pos < target_pos { pos + 1 } else { pos - 1 };
            let next_slot = trap_ref.slot_at(next);
            match placement.occupant(next_slot) {
                Some(other) => {
                    program.push(ScheduledOp::SwapGate {
                        a: qubit,
                        b: other,
                        trap,
                        chain_len: placement.trap_occupancy(trap),
                        ion_distance: 1,
                    });
                    swaps += 1;
                }
                None => {
                    program.push(ScheduledOp::IonReorder { trap, steps: 1 });
                }
            }
            placement.swap_slots(trap_ref.slot_at(pos), next_slot);
            pos = next;
        }
        swaps
    }

    /// Shuttles `qubit` from its trap into the adjacent trap `to`,
    /// inserting the SWAP gates / reorders needed to reach the facing ports.
    ///
    /// # Panics
    ///
    /// Panics if the traps are not adjacent or `to` has no free slot.
    pub fn shuttle_to_adjacent(
        &self,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        qubit: Qubit,
        to: TrapId,
    ) {
        let from = placement.trap_of(qubit).expect("qubit must be placed");
        assert_ne!(from, to, "qubit is already in the destination trap");
        let junctions = self
            .graph
            .topology()
            .link_junctions(from, to)
            .expect("traps must be adjacent to shuttle");
        assert!(placement.trap_free_slots(to) > 0, "destination trap must have a free slot");
        let exit = self.graph.topology().port_slot(from, to);
        let entry = self.graph.topology().port_slot(to, from);
        self.bring_qubit_to_slot(placement, program, qubit, exit);
        self.free_slot(placement, program, entry);
        let source_chain_len = placement.trap_occupancy(from);
        let dest_chain_len = placement.trap_occupancy(to) + 1;
        placement.swap_slots(exit, entry);
        program.push(ScheduledOp::Shuttle {
            qubit,
            from_trap: from,
            to_trap: to,
            junctions,
            segments: 1,
            source_chain_len,
            dest_chain_len,
        });
    }

    /// Ensures `trap` has at least `needed` free slots by cascading ions
    /// towards the nearest traps that still have room, never evicting a
    /// qubit listed in `protect` unless no other ion is available. Returns
    /// `false` if the device has no free slot anywhere to borrow.
    pub fn make_space(
        &self,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        trap: TrapId,
        needed: usize,
        protect: &[Qubit],
    ) -> bool {
        while placement.trap_free_slots(trap) < needed {
            let Some(path) = self.path_to_nearest_space(placement, trap) else {
                return false;
            };
            // Cascade: free one slot in each trap along the path, starting
            // from the end that already has room.
            for j in (0..path.len() - 1).rev() {
                let src = path[j];
                let dst = path[j + 1];
                let port = self.graph.topology().port_slot(src, dst);
                let evict = self
                    .nearest_qubit_to(placement, src, port, protect)
                    .or_else(|| self.nearest_qubit_to(placement, src, port, &[]))
                    .expect("source trap on an eviction path holds at least one ion");
                self.shuttle_to_adjacent(placement, program, evict, dst);
            }
        }
        true
    }

    /// Moves `qubit` into `dest`, hop by hop along the shortest trap route,
    /// making space in intermediate traps as required. Returns `false` only
    /// if space could not be created along the way (or the routing failed to
    /// converge, which indicates an internal error).
    pub fn move_qubit_to_trap(
        &self,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        qubit: Qubit,
        dest: TrapId,
    ) -> bool {
        let budget = 8 * self.graph.topology().num_traps() + self.graph.num_slots() + 16;
        for _ in 0..budget {
            let current = placement.trap_of(qubit).expect("qubit must be placed");
            if current == dest {
                return true;
            }
            let Some(next) = self.router.next_hop(current, dest) else {
                return false;
            };
            if placement.trap_free_slots(next) == 0 {
                if !self.make_space(placement, program, next, 1, &[qubit]) {
                    return false;
                }
                // Making space may have reshuffled ions (including, in the
                // worst case, `qubit` itself): re-evaluate before shuttling.
                continue;
            }
            self.shuttle_to_adjacent(placement, program, qubit, next);
        }
        placement.trap_of(qubit) == Some(dest)
    }

    /// Brings the two qubits of a gate into the same trap (moving `mobile`
    /// towards `anchor`'s trap) and emits the gate.
    pub fn route_and_execute(
        &self,
        placement: &mut Placement,
        program: &mut CompiledProgram,
        mobile: Qubit,
        anchor: Qubit,
    ) -> bool {
        let dest = placement.trap_of(anchor).expect("anchor must be placed");
        if !self.move_qubit_to_trap(placement, program, mobile, dest) {
            return false;
        }
        self.emit_two_qubit_gate(placement, program, mobile, anchor);
        true
    }

    /// BFS over the trap graph from `start` to the nearest trap with a free
    /// slot, returning the trap path (inclusive). `None` if no trap has room.
    fn path_to_nearest_space(&self, placement: &Placement, start: TrapId) -> Option<Vec<TrapId>> {
        let topo = self.graph.topology();
        let n = topo.num_traps();
        let mut prev: Vec<Option<TrapId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(t) = queue.pop_front() {
            if t != start && placement.trap_free_slots(t) > 0 {
                // Reconstruct the path.
                let mut path = vec![t];
                let mut cur = t;
                while let Some(p) = prev[cur.index()] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for (nb, _) in topo.neighbors(t) {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    prev[nb.index()] = Some(t);
                    queue.push_back(nb);
                }
            }
        }
        None
    }

    /// The ion of `trap` closest to `slot` (in chain positions), skipping
    /// any qubit listed in `protect`.
    fn nearest_qubit_to(
        &self,
        placement: &Placement,
        trap: TrapId,
        slot: SlotId,
        protect: &[Qubit],
    ) -> Option<Qubit> {
        let target_pos = self.graph.slot_position(slot);
        let trap_ref = self.graph.topology().trap(trap);
        (0..trap_ref.capacity())
            .filter_map(|pos| placement.occupant(trap_ref.slot_at(pos)).map(|q| (q, pos)))
            .filter(|(q, _)| !protect.contains(q))
            .min_by_key(|&(_, pos)| pos.abs_diff(target_pos))
            .map(|(q, _)| q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_arch::{QccdTopology, WeightConfig};

    fn device(traps: usize, cap: usize) -> (SlotGraph, TrapRouter) {
        let topo = QccdTopology::linear(traps, cap);
        let graph = SlotGraph::new(topo.clone(), WeightConfig::default());
        let router = TrapRouter::new(&topo, WeightConfig::default());
        (graph, router)
    }

    #[test]
    fn ion_distance_skips_spaces() {
        let (graph, router) = device(1, 5);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 3);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(2));
        p.place(Qubit(2), SlotId(4));
        assert_eq!(m.ion_distance(&p, SlotId(0), SlotId(4)), 2); // one ion between
        assert_eq!(m.ion_distance(&p, SlotId(0), SlotId(2)), 1); // space between
        assert_eq!(m.ion_distance(&p, SlotId(2), SlotId(2)), 0);
    }

    #[test]
    fn free_slot_shifts_nearest_space() {
        let (graph, router) = device(1, 4);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 3);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(1));
        p.place(Qubit(2), SlotId(2));
        let mut prog = CompiledProgram::new(3, 1);
        let steps = m.free_slot(&mut p, &mut prog, SlotId(0));
        assert_eq!(steps, 3);
        assert!(p.is_space(SlotId(0)));
        assert_eq!(prog.counts().reorders, 3);
        assert_eq!(prog.counts().swap_gates, 0);
        p.validate().unwrap();
    }

    #[test]
    fn bring_qubit_swaps_past_occupied_and_reorders_past_spaces() {
        let (graph, router) = device(1, 4);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 2);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(1));
        let mut prog = CompiledProgram::new(2, 1);
        let swaps = m.bring_qubit_to_slot(&mut p, &mut prog, Qubit(0), SlotId(3));
        assert_eq!(swaps, 1); // one swap past qubit 1, then reorders over spaces
        assert_eq!(p.slot_of(Qubit(0)), Some(SlotId(3)));
        assert_eq!(prog.counts().swap_gates, 1);
        assert_eq!(prog.counts().reorders, 2);
        p.validate().unwrap();
    }

    #[test]
    fn shuttle_to_adjacent_emits_full_sequence() {
        let (graph, router) = device(2, 3);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 3);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(1));
        p.place(Qubit(2), SlotId(3)); // trap 1 entry port occupied
        let mut prog = CompiledProgram::new(3, 2);
        m.shuttle_to_adjacent(&mut p, &mut prog, Qubit(0), TrapId(1));
        assert_eq!(p.trap_of(Qubit(0)), Some(TrapId(1)));
        let counts = prog.counts();
        assert_eq!(counts.shuttles, 1);
        // Qubit 0 had to pass qubit 1 (one SWAP) and trap 1's port had to be
        // cleared (reorders).
        assert_eq!(counts.swap_gates, 1);
        assert!(counts.reorders >= 1);
        p.validate().unwrap();
    }

    #[test]
    fn make_space_cascades_ions_away() {
        let (graph, router) = device(3, 2);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 4);
        // Trap 0 and trap 1 full, trap 2 empty.
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(1));
        p.place(Qubit(2), SlotId(2));
        p.place(Qubit(3), SlotId(3));
        let mut prog = CompiledProgram::new(4, 3);
        assert!(m.make_space(&mut p, &mut prog, TrapId(0), 1, &[]));
        assert!(p.trap_free_slots(TrapId(0)) >= 1);
        assert!(prog.counts().shuttles >= 1);
        p.validate().unwrap();
    }

    #[test]
    fn make_space_fails_on_a_full_device() {
        let (graph, router) = device(2, 2);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 4);
        for i in 0..4u32 {
            p.place(Qubit(i), SlotId(i));
        }
        let mut prog = CompiledProgram::new(4, 2);
        assert!(!m.make_space(&mut p, &mut prog, TrapId(0), 1, &[]));
    }

    #[test]
    fn move_qubit_multi_hop() {
        let (graph, router) = device(4, 3);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 2);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(11)); // trap 3
        let mut prog = CompiledProgram::new(2, 4);
        assert!(m.move_qubit_to_trap(&mut p, &mut prog, Qubit(0), TrapId(3)));
        assert_eq!(p.trap_of(Qubit(0)), Some(TrapId(3)));
        assert_eq!(prog.counts().shuttles, 3);
        p.validate().unwrap();
    }

    #[test]
    fn route_and_execute_emits_the_gate() {
        let (graph, router) = device(3, 3);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 2);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(8));
        let mut prog = CompiledProgram::new(2, 3);
        assert!(m.route_and_execute(&mut p, &mut prog, Qubit(0), Qubit(1)));
        let counts = prog.counts();
        assert_eq!(counts.two_qubit_gates, 1);
        assert_eq!(counts.shuttles, 2);
        assert_eq!(p.trap_of(Qubit(0)), p.trap_of(Qubit(1)));
    }

    #[test]
    fn emit_gate_records_chain_shape() {
        let (graph, router) = device(1, 6);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 4);
        for i in 0..4u32 {
            p.place(Qubit(i), SlotId(i));
        }
        let mut prog = CompiledProgram::new(4, 1);
        m.emit_two_qubit_gate(&p, &mut prog, Qubit(0), Qubit(3));
        match prog.ops()[0] {
            ScheduledOp::TwoQubitGate { chain_len, ion_distance, .. } => {
                assert_eq!(chain_len, 4);
                assert_eq!(ion_distance, 3);
            }
            _ => panic!("expected a two-qubit gate"),
        }
    }

    #[test]
    #[should_panic(expected = "shared trap")]
    fn emit_gate_across_traps_panics() {
        let (graph, router) = device(2, 2);
        let m = Mechanics::new(&graph, &router);
        let mut p = Placement::new(graph.topology(), 2);
        p.place(Qubit(0), SlotId(0));
        p.place(Qubit(1), SlotId(2));
        let mut prog = CompiledProgram::new(2, 2);
        m.emit_two_qubit_gate(&p, &mut prog, Qubit(0), Qubit(1));
    }
}
