//! The top-level S-SYNC compiler pipeline (Fig. 1).

use crate::batch;
use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::idealized::IdealizationMode;
use crate::initial;
use crate::par_score::ScoringTelemetry;
use crate::scheduler::{Scheduler, SchedulerScratch, SchedulerStats};
use ssync_arch::{Device, Placement, QccdTopology, TrapRouter};
use ssync_circuit::Circuit;
use ssync_sim::{CompiledProgram, ExecutionReport, ExecutionTracer, OpCounts};
use ssync_telemetry::FlightRecording;
use std::borrow::Borrow;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reusable per-worker compile state: the scheduler's working memory,
/// carried across compiles so batch and service workers stop paying the
/// per-compile scratch allocation. One instance belongs to one worker at a
/// time (it is `Send` but deliberately not shared), may be reused across
/// circuits *and* devices, and never influences compiled output — the
/// batch golden tests pin that down.
#[derive(Debug, Default)]
pub struct CompileScratch {
    scheduler: SchedulerScratch,
}

/// The result of compiling (and evaluating) a circuit for a QCCD device.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    program: CompiledProgram,
    report: ExecutionReport,
    final_placement: Placement,
    scheduler_stats: SchedulerStats,
    scoring_telemetry: ScoringTelemetry,
    flight_recording: Option<Arc<FlightRecording>>,
    compile_time: Duration,
}

impl CompileOutcome {
    /// Assembles an outcome from its parts. Intended for alternative
    /// compiler front-ends (e.g. the baseline compilers) that produce the
    /// same artefacts through a different scheduling algorithm.
    pub fn from_parts(
        program: CompiledProgram,
        report: ExecutionReport,
        final_placement: Placement,
        compile_time: Duration,
    ) -> Self {
        CompileOutcome {
            program,
            report,
            final_placement,
            scheduler_stats: SchedulerStats::default(),
            scoring_telemetry: ScoringTelemetry::default(),
            flight_recording: None,
            compile_time,
        }
    }

    /// Assembles an outcome from *every* field, including the scheduler
    /// statistics [`CompileOutcome::from_parts`] defaults. Intended for
    /// codecs (persistent result caches, wire formats) that must
    /// reconstruct a previously-compiled outcome bit-identically.
    pub fn from_saved_parts(
        program: CompiledProgram,
        report: ExecutionReport,
        final_placement: Placement,
        scheduler_stats: SchedulerStats,
        compile_time: Duration,
    ) -> Self {
        CompileOutcome {
            program,
            report,
            final_placement,
            scheduler_stats,
            // Recordings (like scoring telemetry) describe work performed,
            // not the result, so rebuilt outcomes never carry one.
            flight_recording: None,
            scoring_telemetry: ScoringTelemetry::default(),
            compile_time,
        }
    }

    /// Returns this outcome with a compile flight recording attached
    /// (builder-style; used by compilers whose scheduling loop recorded
    /// decision events).
    pub fn with_flight_recording(mut self, recording: Option<Arc<FlightRecording>>) -> Self {
        self.flight_recording = recording;
        self
    }

    /// The hardware-compatible operation stream.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Operation counts (shuttle / SWAP numbers of Figs. 8–9).
    pub fn counts(&self) -> OpCounts {
        self.program.counts()
    }

    /// Timing and success-rate evaluation (Figs. 10–12 quantities).
    pub fn report(&self) -> ExecutionReport {
        self.report
    }

    /// Where every program qubit ended up after execution.
    pub fn final_placement(&self) -> &Placement {
        &self.final_placement
    }

    /// Search statistics of the generic-swap scheduler.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler_stats
    }

    /// Candidate-scoring telemetry of the scheduler run that produced this
    /// outcome (zeros for baseline compilers, for outcomes rebuilt by a
    /// codec, and for cache hits — the counters describe *work performed*,
    /// not the result, so they are deliberately not persisted).
    pub fn scoring_telemetry(&self) -> ScoringTelemetry {
        self.scoring_telemetry
    }

    /// The compile flight recording, when `CompilerConfig::flight_recorder`
    /// was on for this compile. Like [`CompileOutcome::scoring_telemetry`]
    /// it describes the scheduling run, not the result: cache hits and
    /// codec-rebuilt outcomes return `None`, and event content may differ
    /// between scoring backends even though compiled output is
    /// bit-identical.
    pub fn flight_recording(&self) -> Option<&Arc<FlightRecording>> {
        self.flight_recording.as_ref()
    }

    /// Wall-clock compilation time (the Fig. 15 quantity).
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Re-evaluates the same compiled program under an idealisation mode
    /// (Fig. 16) and/or a different tracer, without recompiling.
    pub fn evaluate_with(
        &self,
        tracer: &ExecutionTracer,
        mode: IdealizationMode,
    ) -> ExecutionReport {
        tracer.evaluate(&mode.apply(&self.program))
    }
}

/// The S-SYNC compiler.
///
/// ```
/// use ssync_core::{SSyncCompiler, CompilerConfig};
/// use ssync_circuit::generators::bernstein_vazirani;
/// use ssync_arch::QccdTopology;
///
/// let compiler = SSyncCompiler::new(CompilerConfig::default());
/// let outcome = compiler
///     .compile(&bernstein_vazirani(16), &QccdTopology::grid(2, 2, 6))
///     .unwrap();
/// assert_eq!(outcome.counts().two_qubit_gates, 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SSyncCompiler {
    config: CompilerConfig,
}

impl SSyncCompiler {
    /// Creates a compiler with the given configuration.
    pub fn new(config: CompilerConfig) -> Self {
        SSyncCompiler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// The execution tracer matching this configuration's gate
    /// implementation, operation times and noise model.
    pub fn tracer(&self) -> ExecutionTracer {
        ExecutionTracer {
            gate_impl: self.config.gate_impl,
            op_times: self.config.op_times,
            noise: self.config.noise,
        }
    }

    /// Validates that `circuit` can run on `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::DeviceTooSmall`] if the device cannot hold
    /// every qubit plus one free space, and
    /// [`CompileError::DisconnectedTopology`] if some traps are unreachable.
    pub fn validate(&self, circuit: &Circuit, topology: &QccdTopology) -> Result<(), CompileError> {
        let slots = topology.total_capacity();
        if slots < circuit.num_qubits() + 1 {
            return Err(CompileError::DeviceTooSmall { qubits: circuit.num_qubits(), slots });
        }
        let router = TrapRouter::new(topology, self.config.weights);
        if !router.is_connected() {
            return Err(CompileError::DisconnectedTopology);
        }
        Ok(())
    }

    /// Validates that `circuit` can run on the prepared `device`, using the
    /// device's precomputed router (nothing is rebuilt).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SSyncCompiler::validate`].
    pub fn validate_on(&self, device: &Device, circuit: &Circuit) -> Result<(), CompileError> {
        let slots = device.topology().total_capacity();
        if slots < circuit.num_qubits() + 1 {
            return Err(CompileError::DeviceTooSmall { qubits: circuit.num_qubits(), slots });
        }
        if !device.is_connected() {
            return Err(CompileError::DisconnectedTopology);
        }
        Ok(())
    }

    /// Compiles `circuit` for `topology` and evaluates the result with the
    /// configured timing / noise models.
    ///
    /// This is a convenience wrapper that builds a throw-away [`Device`]
    /// and forwards to [`SSyncCompiler::compile_on`]; sweeps compiling many
    /// circuits against one machine should build the device once and call
    /// `compile_on` (or [`SSyncCompiler::compile_batch`]) directly.
    ///
    /// # Errors
    ///
    /// Returns an error when the device is too small, disconnected, or the
    /// scheduler exhausts its iteration budget (an internal failure).
    pub fn compile(
        &self,
        circuit: &Circuit,
        topology: &QccdTopology,
    ) -> Result<CompileOutcome, CompileError> {
        let device = Device::build(topology.clone(), self.config.weights);
        self.compile_on(&device, circuit)
    }

    /// Compiles `circuit` against a prepared, shared `device` artifact and
    /// evaluates the result with the configured timing / noise models. The
    /// slot graph, trap router, all-pairs distance matrix and trap→edge
    /// candidate index all come from `device`; nothing device-derived is
    /// rebuilt, so this is the entry point to amortise over many circuits.
    ///
    /// [`CompileOutcome::compile_time`] covers compilation proper (initial
    /// mapping + scheduling + evaluation) and deliberately excludes the
    /// device build, which is a per-sweep rather than per-circuit cost.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SSyncCompiler::compile`].
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than this
    /// compiler's configuration — distances would silently disagree with
    /// the heuristic otherwise.
    pub fn compile_on(
        &self,
        device: &Device,
        circuit: &Circuit,
    ) -> Result<CompileOutcome, CompileError> {
        self.compile_on_with_scratch(device, circuit, &mut CompileScratch::default())
    }

    /// [`SSyncCompiler::compile_on`] reusing a caller-owned
    /// [`CompileScratch`]: the scheduler's working memory is taken from
    /// `scratch` for the duration of the compile and handed back
    /// afterwards, so a worker compiling many circuits allocates its
    /// buffers once. Output is bit-identical to `compile_on` — the scratch
    /// only recycles allocations.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SSyncCompiler::compile`].
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than this
    /// compiler's configuration.
    pub fn compile_on_with_scratch(
        &self,
        device: &Device,
        circuit: &Circuit,
        scratch: &mut CompileScratch,
    ) -> Result<CompileOutcome, CompileError> {
        assert!(
            device.weights() == self.config.weights,
            "device was built with different edge weights than the compiler config"
        );
        self.validate_on(device, circuit)?;
        // Force the lazily-built all-pairs matrix before the timer starts:
        // it is a per-device cost, and letting the first compile of a batch
        // absorb it would skew that circuit's reported compile_time.
        device.distance_matrix();
        let start = Instant::now();
        let placement = initial::build_placement(circuit, device, &self.config);
        let mut scheduler =
            Scheduler::with_scratch(device, &self.config, std::mem::take(&mut scratch.scheduler));
        let result = scheduler.run(circuit, placement);
        let scheduler_stats = scheduler.stats();
        let scoring_telemetry = scheduler.scoring_telemetry();
        let flight_recording = scheduler.take_recording().map(Arc::new);
        scratch.scheduler = scheduler.into_scratch();
        let (program, final_placement) = result?;
        let compile_time = start.elapsed();
        let report = self.tracer().evaluate(&program);
        Ok(CompileOutcome {
            program,
            report,
            final_placement,
            scheduler_stats,
            scoring_telemetry,
            flight_recording,
            compile_time,
        })
    }

    /// Compiles every circuit of `circuits` against one shared `device`,
    /// fanning the independent compilations out over scoped worker threads.
    /// The worker count comes from [`batch::resolve_workers`] (the
    /// `SSYNC_BATCH_WORKERS` environment variable, then
    /// [`CompilerConfig::batch_workers`], then the machine's available
    /// parallelism). Results are returned **in input order** and are
    /// bit-identical to calling [`SSyncCompiler::compile_on`] per circuit,
    /// whatever the worker count.
    ///
    /// The work-list is generic over [`Borrow<Circuit>`], so both plain
    /// `&[Circuit]` slices and shared `&[Arc<Circuit>]` work-lists (the
    /// service / sweep shape, where one circuit targets many devices
    /// without being cloned) compile through the same entry point.
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than this
    /// compiler's configuration.
    pub fn compile_batch<C: Borrow<Circuit> + Sync>(
        &self,
        device: &Device,
        circuits: &[C],
    ) -> Vec<Result<CompileOutcome, CompileError>> {
        self.compile_batch_with_workers(
            device,
            circuits,
            batch::resolve_workers(self.config.batch_workers),
        )
    }

    /// [`SSyncCompiler::compile_batch`] with an explicit worker count
    /// (mainly for tests proving worker-count independence). Every worker
    /// carries one [`CompileScratch`] across its share of the batch, so the
    /// scheduler's working memory is allocated `workers` times, not
    /// `circuits.len()` times.
    ///
    /// # Panics
    ///
    /// Panics if `device` was built with different edge weights than this
    /// compiler's configuration.
    pub fn compile_batch_with_workers<C: Borrow<Circuit> + Sync>(
        &self,
        device: &Device,
        circuits: &[C],
        workers: usize,
    ) -> Vec<Result<CompileOutcome, CompileError>> {
        // Budget intra-compile scoring threads against the batch fan-out:
        // `workers × scoring_threads` must not oversubscribe the host.
        // Pinning the budgeted value (even when it is 1) also keeps each
        // worker from re-consulting `SSYNC_SCORE_THREADS` unbudgeted.
        // Output is unaffected — scoring threads never change results.
        let scoring = crate::par_score::budget_scoring_threads(
            crate::par_score::resolve_scoring_threads(self.config.scoring_threads),
            workers.clamp(1, circuits.len().max(1)),
        );
        let compiler = SSyncCompiler::new(self.config.with_scoring_threads(scoring));
        batch::parallel_map_with(workers, circuits, CompileScratch::default, |scratch, _, c| {
            compiler.compile_on_with_scratch(device, c.borrow(), scratch)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitialMapping;
    use ssync_circuit::generators::{bernstein_vazirani, qaoa_nearest_neighbor, qft};
    use ssync_circuit::Qubit;
    use ssync_sim::GateImplementation;

    #[test]
    fn compile_preserves_gate_counts() {
        let circuit = qft(16);
        let topo = QccdTopology::grid(2, 2, 6);
        let outcome = SSyncCompiler::default().compile(&circuit, &topo).unwrap();
        let counts = outcome.counts();
        assert_eq!(counts.two_qubit_gates, circuit.two_qubit_gate_count());
        assert_eq!(counts.single_qubit_gates, circuit.single_qubit_gate_count());
        assert!(outcome.report().success_rate > 0.0);
        assert!(outcome.compile_time() > Duration::ZERO);
    }

    #[test]
    fn device_too_small_is_rejected() {
        let circuit = qft(16);
        let topo = QccdTopology::linear(2, 8); // exactly 16 slots: no spare space
        let err = SSyncCompiler::default().compile(&circuit, &topo).unwrap_err();
        assert!(matches!(err, CompileError::DeviceTooSmall { .. }));
    }

    #[test]
    fn bv_needs_few_shuttles_under_gathering() {
        // BV's 2-qubit gates all target one ancilla; with the gathering
        // mapping most of them are already co-located.
        let circuit = bernstein_vazirani(20);
        let topo = QccdTopology::grid(2, 2, 8);
        let outcome = SSyncCompiler::default().compile(&circuit, &topo).unwrap();
        assert!(outcome.counts().shuttles <= 2 * circuit.two_qubit_gate_count());
        assert!(outcome.report().success_rate > 0.5);
    }

    #[test]
    fn idealized_modes_are_upper_bounds() {
        let circuit = qft(14);
        let topo = QccdTopology::grid(2, 2, 5);
        let compiler = SSyncCompiler::default();
        let outcome = compiler.compile(&circuit, &topo).unwrap();
        let tracer = compiler.tracer();
        let base = outcome.report().success_rate;
        let perfect_swap = outcome.evaluate_with(&tracer, IdealizationMode::PerfectSwap);
        let perfect_shuttle = outcome.evaluate_with(&tracer, IdealizationMode::PerfectShuttle);
        let ideal = outcome.evaluate_with(&tracer, IdealizationMode::Ideal);
        assert!(perfect_swap.success_rate >= base);
        assert!(perfect_shuttle.success_rate >= base);
        assert!(ideal.success_rate >= perfect_swap.success_rate.min(perfect_shuttle.success_rate));
    }

    #[test]
    fn different_gate_impls_change_execution_time() {
        let circuit = qaoa_nearest_neighbor(16, 2);
        let topo = QccdTopology::grid(2, 2, 6);
        let fm = SSyncCompiler::new(CompilerConfig::default()).compile(&circuit, &topo).unwrap();
        let am2 =
            SSyncCompiler::new(CompilerConfig::default().with_gate_impl(GateImplementation::Am2))
                .compile(&circuit, &topo)
                .unwrap();
        assert_ne!(fm.report().total_time_us, am2.report().total_time_us);
    }

    #[test]
    fn initial_mapping_changes_shuttle_profile() {
        let circuit = qft(20);
        let topo = QccdTopology::grid(2, 3, 8);
        let gathering = SSyncCompiler::new(
            CompilerConfig::default().with_initial_mapping(InitialMapping::Gathering),
        )
        .compile(&circuit, &topo)
        .unwrap();
        let even = SSyncCompiler::new(
            CompilerConfig::default().with_initial_mapping(InitialMapping::EvenDivided),
        )
        .compile(&circuit, &topo)
        .unwrap();
        // Gathering co-locates qubits, so it should not need more shuttles
        // than the even-divided start.
        assert!(gathering.counts().shuttles <= even.counts().shuttles);
    }

    #[test]
    fn final_placement_is_consistent() {
        let mut c = Circuit::new(6);
        for i in 0..5u32 {
            c.cx(Qubit(i), Qubit(i + 1));
        }
        let topo = QccdTopology::linear(3, 4);
        let outcome = SSyncCompiler::default().compile(&c, &topo).unwrap();
        outcome.final_placement().validate().unwrap();
        assert!(outcome.final_placement().is_complete());
    }
}
