//! Property tests for the SLO burn-rate window: the ring's windowed delta
//! math must agree with a brute-force oracle that replays the full pushed
//! sequence and recomputes the burn rate from the retained suffix.

use proptest::prelude::*;
use ssync_telemetry::BurnWindow;

/// Brute-force oracle: given every reading ever pushed and the window
/// capacity, recompute the burn rate from the retained suffix directly.
fn oracle_burn_ppm(readings: &[(u64, u64)], capacity: usize) -> Option<u64> {
    let capacity = capacity.max(2);
    let start = readings.len().saturating_sub(capacity);
    let window = &readings[start..];
    let (oldest_total, oldest_bad) = *window.first()?;
    let (newest_total, newest_bad) = *window.last()?;
    let total = newest_total.saturating_sub(oldest_total);
    if total == 0 {
        return None;
    }
    let bad = newest_bad.saturating_sub(oldest_bad).min(total);
    Some(bad.saturating_mul(1_000_000) / total)
}

/// Monotone cumulative `(total, bad)` sequences with `bad <= total`, the
/// shape the SLO ticker actually produces.
fn cumulative_readings() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..50, 0u64..50), 0..40).prop_map(|deltas| {
        let mut total = 0u64;
        let mut bad = 0u64;
        deltas
            .into_iter()
            .map(|(dt, db)| {
                total += dt;
                bad += db.min(dt); // bad requests are a subset of requests
                (total, bad)
            })
            .collect()
    })
}

/// Arbitrary (possibly non-monotone) sequences: saturating deltas must
/// never panic or report over 100%.
fn arbitrary_readings() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring agrees with the brute-force oracle for every prefix of a
    /// well-formed cumulative sequence, at any capacity.
    #[test]
    fn window_matches_brute_force_oracle(
        readings in cumulative_readings(),
        capacity in 0usize..12,
    ) {
        let mut window = BurnWindow::new(capacity);
        for (i, &(total, bad)) in readings.iter().enumerate() {
            window.push(total, bad);
            prop_assert_eq!(
                window.burn_ppm(),
                oracle_burn_ppm(&readings[..=i], capacity),
                "diverged after reading {} of {:?} at capacity {}",
                i, &readings, capacity
            );
        }
    }

    /// Whatever garbage is pushed, the gauge stays within [0, 1e6] ppm and
    /// never panics.
    #[test]
    fn burn_is_always_a_valid_fraction(
        readings in arbitrary_readings(),
        capacity in 0usize..12,
    ) {
        let mut window = BurnWindow::new(capacity);
        for &(total, bad) in &readings {
            window.push(total, bad);
            if let Some(ppm) = window.burn_ppm() {
                prop_assert!(ppm <= 1_000_000, "burn {ppm} ppm exceeds 100%");
            }
        }
        prop_assert!(window.len() <= window.capacity());
    }

    /// Zero traffic across the window (flat totals) reports no burn rather
    /// than a divide-by-zero or a spurious 0.
    #[test]
    fn flat_totals_report_none(total in 0u64..1000, bad in 0u64..1000, n in 2usize..8) {
        let mut window = BurnWindow::new(8);
        for _ in 0..n {
            window.push(total, bad.min(total));
        }
        prop_assert_eq!(window.burn_ppm(), None);
    }
}
