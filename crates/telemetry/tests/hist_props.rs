//! Property tests for the log2 latency histogram: merge associativity and
//! nearest-rank percentile agreement with a sorted-vector oracle.

use proptest::prelude::*;
use ssync_telemetry::{bucket_index, HistogramSnapshot, LatencyHistogram};

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &s in samples {
        h.record_ns(s);
    }
    h.snapshot()
}

/// Nearest-rank percentile from a sorted vector: the ceil(p*n)-th smallest.
fn oracle_percentile(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len() as u64;
    let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
    Some(sorted[(rank - 1) as usize])
}

/// Samples spanning every regime: zeros, tiny, mid-range, and values that
/// land in the saturating top bucket.
fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..1,
            1u64..16,
            1u64..1_000_000,
            (0u32..64).prop_map(|s| 1u64 << s),
            (0u64..2).prop_map(|d| u64::MAX - d),
        ],
        0..64,
    )
}

/// A fraction in (0, 1] with millipoint resolution.
fn fraction_strategy() -> impl Strategy<Value = f64> {
    (1u64..1001).prop_map(|v| v as f64 / 1000.0)
}

/// Arbitrary u64 stand-in (the vendored proptest has no `any::<u64>()`).
fn any_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..u64::MAX,
        (0u64..1).prop_map(|_| u64::MAX),
        (0u32..64).prop_map(|s| 1u64 << s),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging snapshots is associative and equals the one-shot histogram
    /// over the concatenated samples.
    #[test]
    fn merge_is_associative_and_lossless(
        a in sample_strategy(),
        b in sample_strategy(),
        c in sample_strategy(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    /// Every derived percentile lands in the same log2 bucket as the oracle
    /// value and never undershoots it; the histogram's max is exact.
    #[test]
    fn percentiles_agree_with_sorted_vec_oracle(
        samples in sample_strategy(),
        p in fraction_strategy(),
    ) {
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.max_ns, sorted.last().copied().unwrap_or(0));

        match (snap.percentile(p), oracle_percentile(&sorted, p)) {
            (None, None) => {} // both empty
            (Some(h), Some(o)) => {
                prop_assert!(h >= o, "histogram p{p} = {h} undershoots oracle {o}");
                prop_assert_eq!(
                    bucket_index(h), bucket_index(o),
                    "histogram p{} = {} left the oracle's bucket ({})", p, h, o
                );
                prop_assert!(h <= snap.max_ns, "percentile exceeds exact max");
            }
            (h, o) => prop_assert!(false, "emptiness disagreement: {:?} vs {:?}", h, o),
        }
    }

    /// A single-sample histogram reports that sample exactly at every rank.
    #[test]
    fn single_sample_is_exact(v in any_u64(), p in fraction_strategy()) {
        let snap = snapshot_of(&[v]);
        prop_assert_eq!(snap.percentile(p), Some(v));
    }
}
