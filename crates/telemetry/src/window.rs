//! Rolling windows over cumulative counter readings, used for SLO
//! **burn-rate** gauges: "over the last minute, what fraction of
//! serviced requests blew their latency budget?"
//!
//! A [`BurnWindow`] holds a bounded ring of `(total, bad)` cumulative
//! readings sampled at a fixed cadence (the serviced SLO ticker pushes
//! one reading per tick). The burn rate over the window is the delta
//! between the oldest retained reading and the newest:
//! `(bad_new − bad_old) / (total_new − total_old)`, reported in parts
//! per million so the scrape surface stays integer-only. Two windows at
//! different capacities (e.g. 1 min and 10 min of 500 ms ticks) give the
//! classic fast-burn / slow-burn alerting pair.
//!
//! Counters are cumulative and monotone non-decreasing by contract;
//! deltas are computed with saturating subtraction so a reset (e.g. a
//! reconfigured SLO target clearing the windows) can never underflow.

use std::collections::VecDeque;

/// A bounded ring of cumulative `(total, bad)` readings with a
/// windowed burn-rate query. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct BurnWindow {
    capacity: usize,
    readings: VecDeque<(u64, u64)>,
}

impl BurnWindow {
    /// A window retaining at most `capacity` readings (at least 2 —
    /// a burn rate needs a delta).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        BurnWindow { capacity, readings: VecDeque::with_capacity(capacity) }
    }

    /// Appends one cumulative reading, evicting the oldest beyond
    /// capacity.
    pub fn push(&mut self, total: u64, bad: u64) {
        if self.readings.len() == self.capacity {
            self.readings.pop_front();
        }
        self.readings.push_back((total, bad));
    }

    /// Readings currently retained.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// `true` when no readings have been pushed.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// The maximum number of readings retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all readings (used when the SLO target changes — old
    /// readings were judged against the old budget).
    pub fn reset(&mut self) {
        self.readings.clear();
    }

    /// The fraction of requests over budget across the window, in parts
    /// per million. `None` until two readings exist or while the window
    /// saw no traffic (zero total delta) — a gauge that would otherwise
    /// be 0/0.
    pub fn burn_ppm(&self) -> Option<u64> {
        let (oldest_total, oldest_bad) = *self.readings.front()?;
        let (newest_total, newest_bad) = *self.readings.back()?;
        let total = newest_total.saturating_sub(oldest_total);
        if total == 0 {
            return None;
        }
        let bad = newest_bad.saturating_sub(oldest_bad).min(total);
        Some(bad.saturating_mul(1_000_000) / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_readings_and_traffic() {
        let mut w = BurnWindow::new(4);
        assert_eq!(w.burn_ppm(), None);
        w.push(10, 1);
        assert_eq!(w.burn_ppm(), None, "single reading has no delta");
        w.push(10, 1);
        assert_eq!(w.burn_ppm(), None, "zero total delta is no traffic");
        w.push(20, 6);
        assert_eq!(w.burn_ppm(), Some(500_000), "5 bad of 10 new requests");
    }

    #[test]
    fn window_slides_and_forgets_old_burn() {
        let mut w = BurnWindow::new(3);
        w.push(0, 0);
        w.push(100, 100); // a terrible tick: 100% burn
        w.push(200, 100);
        assert_eq!(w.burn_ppm(), Some(500_000));
        w.push(300, 100); // the terrible tick's left edge ages out
        assert_eq!(w.burn_ppm(), Some(0), "window now spans only clean ticks");
    }

    #[test]
    fn reset_clears_history() {
        let mut w = BurnWindow::new(4);
        w.push(0, 0);
        w.push(50, 25);
        assert!(w.burn_ppm().is_some());
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.burn_ppm(), None);
    }

    #[test]
    fn capacity_floor_is_two() {
        let w = BurnWindow::new(0);
        assert_eq!(w.capacity(), 2);
    }

    #[test]
    fn bad_delta_is_clamped_to_total_delta() {
        let mut w = BurnWindow::new(4);
        // A pathological sequence (bad grew faster than total) must not
        // report more than 100%.
        w.push(10, 0);
        w.push(12, 5);
        assert_eq!(w.burn_ppm(), Some(1_000_000));
    }
}
