//! Fixed-bucket log2 latency histograms.
//!
//! A [`LatencyHistogram`] is a lock-free recorder with one atomic `u64`
//! counter per power-of-two bucket of nanoseconds. Recording is a single
//! relaxed `fetch_add` (plus a relaxed `fetch_max` for the exact maximum),
//! which keeps the hot-path cost of instrumentation in the tens of
//! nanoseconds. Reading happens through an immutable [`HistogramSnapshot`]
//! that supports merging (associative and commutative) and nearest-rank
//! percentile derivation.
//!
//! Percentiles are derived from bucket upper bounds, so they are exact to
//! within one power of two — except for the globally largest sample, which
//! is tracked exactly and caps every derived percentile. In particular a
//! single-sample histogram reports that sample exactly at every rank.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets. Bucket `0` holds exact zeros; bucket `i` for
/// `1 <= i < 63` holds values in `[2^(i-1), 2^i - 1]`; the final bucket
/// additionally absorbs everything up to `u64::MAX`.
pub const BUCKETS: usize = 64;

/// Map a nanosecond value to its bucket index.
#[inline]
pub fn bucket_index(value_ns: u64) -> usize {
    (64 - value_ns.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket, in nanoseconds.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A mergeable, lock-free log2 latency histogram (values in nanoseconds).
///
/// Each bucket additionally retains one **exemplar**: the trace id of the
/// most recent observation that landed in it (0 when the bucket has never
/// seen a traced observation). Exemplars turn "what is my p99?" into
/// "fetch *this* trace": the text exposition renders them as
/// OpenMetrics-style `# {trace_id="..."}` suffixes on bucket lines.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    exemplars: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record a single nanosecond observation.
    pub fn record_ns(&self, value_ns: u64) {
        self.buckets[bucket_index(value_ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(value_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(value_ns, Ordering::Relaxed);
    }

    /// Record an observation and stamp its trace id as the bucket's
    /// exemplar. Trace ids are process-monotonic and never zero, so
    /// `fetch_max` keeps the most recent traced observation per bucket
    /// without a compare-and-swap loop; a zero id records the latency but
    /// leaves the exemplar untouched.
    pub fn record_ns_with_exemplar(&self, value_ns: u64, trace_id: u64) {
        self.record_ns(value_ns);
        if trace_id != 0 {
            self.exemplars[bucket_index(value_ns)].fetch_max(trace_id, Ordering::Relaxed);
        }
    }

    /// Record a [`Duration`], saturating at `u64::MAX` nanoseconds.
    pub fn record(&self, value: Duration) {
        self.record_ns(value.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Take an immutable snapshot of the current state.
    ///
    /// Individual loads are relaxed, so a snapshot taken concurrently with
    /// writers is not a point-in-time cut — each counter is individually
    /// valid but the set may straddle in-flight records. That is fine for
    /// monitoring; tests snapshot quiescent histograms.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            exemplars: std::array::from_fn(|i| self.exemplars[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data view of a [`LatencyHistogram`], mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Per-bucket exemplar trace ids (0 = no traced observation yet).
    pub exemplars: [u64; BUCKETS],
    /// Sum of all recorded nanoseconds (wrapping on overflow).
    pub sum_ns: u64,
    /// Largest recorded value, exact.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], exemplars: [0; BUCKETS], sum_ns: 0, max_ns: 0 }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Fold another snapshot into this one. Merging is associative and
    /// commutative, so shard-local histograms can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        // Trace ids are process-monotonic, so `max` keeps the most recent
        // exemplar per bucket — commutative and associative like the counts.
        for (mine, theirs) in self.exemplars.iter_mut().zip(other.exemplars.iter()) {
            *mine = (*mine).max(*theirs);
        }
        self.sum_ns = self.sum_ns.wrapping_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of observations in buckets *strictly above* the one holding
    /// `threshold_ns` — i.e. observations guaranteed to exceed the
    /// threshold. Bucket-granular and therefore conservative: values that
    /// exceeded the threshold but share its bucket are not counted. Used
    /// for SLO burn accounting, where a stable under-approximation beats a
    /// noisy exact count.
    pub fn count_over(&self, threshold_ns: u64) -> u64 {
        let cutoff = bucket_index(threshold_ns);
        self.buckets[cutoff + 1..].iter().fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// Nearest-rank percentile. `p` is a fraction in `(0, 1]`; returns the
    /// upper bound of the bucket holding the rank-th smallest observation,
    /// capped by the exact maximum. `None` when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return Some(bucket_upper_bound(i).min(self.max_ns));
            }
        }
        Some(self.max_ns)
    }

    /// Median (nearest rank), 0 when empty.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50).unwrap_or(0)
    }

    /// 90th percentile (nearest rank), 0 when empty.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90).unwrap_or(0)
    }

    /// 99th percentile (nearest rank), 0 when empty.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99).unwrap_or(0)
    }

    /// Mean in nanoseconds, 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        for v in [0u64, 1, 2, 3, 5, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_rank() {
        let h = LatencyHistogram::new();
        h.record_ns(12_345);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        for p in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.percentile(p), Some(12_345));
        }
        assert_eq!(s.max_ns, 12_345);
        assert_eq!(s.mean_ns(), 12_345);
    }

    #[test]
    fn saturating_bucket_holds_huge_values() {
        let h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        h.record_ns(u64::MAX - 1);
        h.record_ns(1u64 << 62);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 3);
        assert_eq!(s.count(), 3);
        assert_eq!(s.percentile(1.0), Some(u64::MAX));
        assert_eq!(s.max_ns, u64::MAX);
    }

    #[test]
    fn duration_recording_saturates() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1_000));
        h.record(Duration::from_secs(u64::MAX)); // > u64::MAX ns
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max_ns, u64::MAX);
    }

    #[test]
    fn exemplars_track_most_recent_trace_per_bucket() {
        let h = LatencyHistogram::new();
        h.record_ns(100); // no exemplar
        h.record_ns_with_exemplar(100, 7);
        h.record_ns_with_exemplar(120, 9); // same bucket, newer trace wins
        h.record_ns_with_exemplar(1, 3);
        h.record_ns_with_exemplar(5000, 0); // zero id never stamps
        let s = h.snapshot();
        assert_eq!(s.exemplars[bucket_index(100)], 9);
        assert_eq!(s.exemplars[bucket_index(1)], 3);
        assert_eq!(s.exemplars[bucket_index(5000)], 0);
        assert_eq!(s.count(), 5, "exemplar recording still counts the latency");
    }

    #[test]
    fn count_over_is_bucket_granular_and_conservative() {
        let h = LatencyHistogram::new();
        h.record_ns(100); // bucket 7 (64..127)
        h.record_ns(120); // bucket 7 too
        h.record_ns(500); // bucket 9
        h.record_ns(5000); // bucket 13
        let s = h.snapshot();
        // Threshold 110 shares bucket 7 with the 120 sample: only the two
        // strictly-higher buckets count.
        assert_eq!(s.count_over(110), 2);
        assert_eq!(s.count_over(0), 4);
        assert_eq!(s.count_over(u64::MAX), 0);
    }

    #[test]
    fn merge_is_commutative() {
        let a = {
            let h = LatencyHistogram::new();
            for v in [1u64, 5, 100, 10_000] {
                h.record_ns(v);
            }
            h.snapshot()
        };
        let b = {
            let h = LatencyHistogram::new();
            for v in [0u64, 3, 1 << 40] {
                h.record_ns(v);
            }
            h.snapshot()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 7);
    }
}
