//! Per-request trace spans and the bounded trace journal.
//!
//! A [`Span`] is a cheaply clonable (`Arc`-backed) recorder anchored to a
//! monotonic clock ([`std::time::Instant`]) at creation. Pipeline stages
//! append named [`SpanEvent`]s as they complete; the owner calls
//! [`Span::finish`] once when the request's terminal result is delivered.
//! Events recorded after `finish` (for example the response-delivery write
//! on the wire) are kept and show up in later snapshots — the journal holds
//! the live span, not a frozen copy.
//!
//! Trace ids are assigned by whoever creates the span (the compile service
//! hands out a process-local monotonic counter) and are never zero, so a
//! zero trace id on the wire unambiguously means "peer predates tracing".

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One named, timed stage inside a span. Offsets are nanoseconds since the
/// span was created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name, e.g. `"queue_wait"` or `"compile"`.
    pub stage: &'static str,
    /// Start offset from span creation, in nanoseconds.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug)]
struct SpanInner {
    trace_id: u64,
    started: Instant,
    /// Total wall time fixed by the first `finish` call; 0 while running.
    total_ns: AtomicU64,
    events: Mutex<Vec<SpanEvent>>,
    attrs: Mutex<Vec<(&'static str, String)>>,
}

/// A per-request trace recorder. Clones share the same underlying record.
#[derive(Debug, Clone)]
pub struct Span {
    inner: Arc<SpanInner>,
}

impl Span {
    /// Start a new span with the given (non-zero, caller-assigned) trace id.
    pub fn new(trace_id: u64) -> Self {
        Self {
            inner: Arc::new(SpanInner {
                trace_id,
                started: Instant::now(),
                total_ns: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
                attrs: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The server-assigned trace id.
    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// Nanoseconds since the span was created (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Record a stage that just finished and took `dur`. The start offset is
    /// back-computed from the current clock, so call this immediately after
    /// the stage completes.
    pub fn record(&self, stage: &'static str, dur: Duration) {
        let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        let start_ns = self.elapsed_ns().saturating_sub(dur_ns);
        self.push_event(SpanEvent { stage, start_ns, dur_ns });
    }

    /// Record a stage that started at `start` (a clock reading taken inside
    /// this span's lifetime) and just finished.
    pub fn record_since(&self, stage: &'static str, start: Instant) {
        self.record(stage, start.elapsed());
    }

    fn push_event(&self, event: SpanEvent) {
        self.inner.events.lock().expect("span events poisoned").push(event);
    }

    /// Attach or replace a key/value attribute (tenant, priority, outcome…).
    pub fn set_attr(&self, key: &'static str, value: impl Into<String>) {
        let value = value.into();
        let mut attrs = self.inner.attrs.lock().expect("span attrs poisoned");
        if let Some(slot) = attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            attrs.push((key, value));
        }
    }

    /// Fix the span's total wall time. Idempotent: the first call wins and
    /// every call returns the fixed total in nanoseconds.
    pub fn finish(&self) -> u64 {
        let now = self.elapsed_ns().max(1);
        match self.inner.total_ns.compare_exchange(0, now, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => now,
            Err(prev) => prev,
        }
    }

    /// Total wall time if finished, `None` while the request is in flight.
    pub fn total_ns(&self) -> Option<u64> {
        match self.inner.total_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Immutable copy of the span's current state.
    pub fn to_record(&self) -> TraceRecord {
        TraceRecord {
            trace_id: self.inner.trace_id,
            total_ns: self.inner.total_ns.load(Ordering::Acquire),
            events: self.inner.events.lock().expect("span events poisoned").clone(),
            attrs: self.inner.attrs.lock().expect("span attrs poisoned").clone(),
        }
    }

    /// Render the span as one line of JSON (no trailing newline). Durations
    /// are nanoseconds; the trace id is zero-padded hex to make grepping for
    /// a specific request trivial.
    pub fn to_jsonl(&self) -> String {
        let rec = self.to_record();
        rec.to_jsonl()
    }
}

/// Plain-data snapshot of a span, as stored by readers of the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Server-assigned trace id (never zero for real requests).
    pub trace_id: u64,
    /// Total wall time in nanoseconds; 0 while the request is in flight.
    pub total_ns: u64,
    /// Completed stages in recording order.
    pub events: Vec<SpanEvent>,
    /// Request attributes (tenant, priority, outcome…).
    pub attrs: Vec<(&'static str, String)>,
}

impl TraceRecord {
    /// Render as one line of JSON (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"trace_id\":\"");
        out.push_str(&format!("{:016x}", self.trace_id));
        out.push_str("\",\"total_ns\":");
        out.push_str(&self.total_ns.to_string());
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(k, &mut out);
            out.push_str("\":\"");
            escape_json_into(v, &mut out);
            out.push('"');
        }
        out.push_str("},\"stages\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"stage\":\"");
            escape_json_into(ev.stage, &mut out);
            out.push_str("\",\"start_ns\":");
            out.push_str(&ev.start_ns.to_string());
            out.push_str(",\"dur_ns\":");
            out.push_str(&ev.dur_ns.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Bounded ring of recent spans. Pushing beyond capacity evicts the oldest
/// entry; readers get plain-data [`TraceRecord`]s. Each entry may carry a
/// compile [`FlightRecording`](crate::recorder::FlightRecording) alongside
/// the span — the journal is what keeps the recorder buffer alive after a
/// request finishes, so `GetTrace` can serve the decision stream for as
/// long as the span itself is retained.
#[derive(Debug)]
pub struct TraceJournal {
    capacity: usize,
    ring: Mutex<VecDeque<(Span, Option<Arc<crate::recorder::FlightRecording>>)>>,
}

impl TraceJournal {
    /// A journal retaining up to `capacity` most-recent spans.
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), ring: Mutex::new(VecDeque::new()) }
    }

    /// Append a span with no flight recording attached.
    pub fn push(&self, span: Span) {
        self.push_with_recording(span, None);
    }

    /// Append a span together with its compile flight recording (if the
    /// request recorded one), evicting the oldest entry if the ring is
    /// full.
    pub fn push_with_recording(
        &self,
        span: Span,
        recording: Option<Arc<crate::recorder::FlightRecording>>,
    ) {
        let mut ring = self.ring.lock().expect("trace journal poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back((span, recording));
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace journal poisoned").len()
    }

    /// True when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of retained spans, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        let ring = self.ring.lock().expect("trace journal poisoned");
        ring.iter().map(|(span, _)| span.to_record()).collect()
    }

    /// Look up a retained trace by id, returning its record and attached
    /// flight recording. Scans newest-first so a recycled id (impossible
    /// in practice — ids are process-monotonic) would resolve to the most
    /// recent occurrence.
    pub fn find(
        &self,
        trace_id: u64,
    ) -> Option<(TraceRecord, Option<Arc<crate::recorder::FlightRecording>>)> {
        let ring = self.ring.lock().expect("trace journal poisoned");
        ring.iter()
            .rev()
            .find(|(span, _)| span.trace_id() == trace_id)
            .map(|(span, recording)| (span.to_record(), recording.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_events_and_finishes_once() {
        let span = Span::new(7);
        span.record("parse", Duration::from_micros(3));
        span.set_attr("priority", "high");
        span.set_attr("priority", "batch"); // replace, not duplicate
        let total = span.finish();
        assert!(total > 0);
        assert_eq!(span.finish(), total, "finish is idempotent");
        span.record("delivery", Duration::from_micros(1)); // post-finish event kept
        let rec = span.to_record();
        assert_eq!(rec.trace_id, 7);
        assert_eq!(rec.total_ns, total);
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].stage, "parse");
        assert_eq!(rec.events[1].stage, "delivery");
        assert_eq!(rec.attrs, vec![("priority", "batch".to_string())]);
    }

    #[test]
    fn jsonl_is_well_formed_and_escaped() {
        let span = Span::new(0xabc);
        span.set_attr("tenant", "we\"ird\\name\n");
        span.record("compile", Duration::from_nanos(42));
        span.finish();
        let line = span.to_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"trace_id\":\"0000000000000abc\""));
        assert!(line.contains("\\\"ird\\\\name\\n"));
        assert!(line.contains("\"stage\":\"compile\""));
        assert!(!line.contains('\n'), "JSONL must be a single line");
    }

    #[test]
    fn journal_evicts_oldest() {
        let journal = TraceJournal::new(2);
        for id in 1..=3u64 {
            journal.push(Span::new(id));
        }
        let recent = journal.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].trace_id, 2);
        assert_eq!(recent[1].trace_id, 3);
    }

    #[test]
    fn journal_sees_post_push_events() {
        let journal = TraceJournal::new(4);
        let span = Span::new(9);
        journal.push(span.clone());
        span.record("delivery", Duration::from_nanos(5));
        let recent = journal.recent();
        assert_eq!(recent[0].events.len(), 1, "journal holds the live span");
    }

    #[test]
    fn journal_finds_traces_and_keeps_recordings_alive() {
        use crate::recorder::{FlightEvent, FlightRecorder};
        let journal = TraceJournal::new(2);
        let mut rec = FlightRecorder::new(4);
        rec.record(FlightEvent::LayerOpened { layer: 1, ready_gates: 2 });
        journal.push_with_recording(Span::new(1), Some(Arc::new(rec.into_recording())));
        journal.push(Span::new(2));
        let (record, recording) = journal.find(1).expect("trace 1 retained");
        assert_eq!(record.trace_id, 1);
        assert_eq!(recording.expect("recording attached").events.len(), 1);
        let (_, none) = journal.find(2).expect("trace 2 retained");
        assert!(none.is_none(), "no recording was attached to trace 2");
        assert!(journal.find(99).is_none());
        journal.push(Span::new(3)); // evicts trace 1 and its recording
        assert!(journal.find(1).is_none());
    }
}
