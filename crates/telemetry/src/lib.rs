//! Std-only observability primitives for the S-SYNC compile service.
//!
//! Five small, dependency-free building blocks:
//!
//! - [`hist`]: lock-free log2 latency histograms ([`LatencyHistogram`]) with
//!   mergeable snapshots, per-bucket exemplar trace ids, and nearest-rank
//!   percentile derivation.
//! - [`span`]: per-request trace recorders ([`Span`]) anchored to a
//!   monotonic clock, a bounded [`TraceJournal`] ring of recent traces, and
//!   single-line JSON rendering for slow-request logs.
//! - [`text`]: a minimal Prometheus-style text-exposition writer
//!   ([`TextExposition`]).
//! - [`recorder`]: the compile flight recorder ([`FlightRecorder`]) — a
//!   bounded, preallocated ring of fixed-size scheduler decision events.
//! - [`window`]: rolling [`BurnWindow`]s of cumulative counter readings for
//!   SLO burn-rate gauges.
//!
//! Everything here is observation-only: recording a latency or appending a
//! span event never feeds back into scheduling or compilation, so enabling
//! telemetry cannot change compiled output. The compile-service integration
//! (stage keying by priority and compiler kind, trace-id assignment, the
//! wire `GetStats` surface) lives in `ssync-service`; this crate stays
//! generic so benches and tests can use it standalone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod recorder;
pub mod span;
pub mod text;
pub mod window;

pub use hist::{bucket_index, bucket_upper_bound, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use recorder::{
    FlightEvent, FlightRecorder, FlightRecording, DEFAULT_RECORDER_CAPACITY, SWAP_SCHEDULE_BUBBLE,
    SWAP_SCHEDULE_RECURSIVE,
};
pub use span::{Span, SpanEvent, TraceJournal, TraceRecord};
pub use text::TextExposition;
pub use window::BurnWindow;
