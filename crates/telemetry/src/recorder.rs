//! The compile **flight recorder**: a bounded, preallocated ring of
//! compact, fixed-size decision events the scheduler and the
//! permutation-routing compiler fill while a compile runs.
//!
//! Requests tell you *that* a compile took 1.8 ms; the flight recorder
//! tells you *why* — which frontier layers stalled, which candidate won
//! each iteration and by what margin, which shuttles were executed and
//! what they cost, and how many comparators each swap schedule emitted
//! versus selected. The buffer is allocated once at `FlightRecorder::new`
//! and never grows: recording an event into a full ring overwrites the
//! oldest one (and counts it in [`FlightRecorder::dropped`]), so a
//! pathological compile cannot balloon memory or stall on allocation.
//!
//! Recording is **observation-only** by contract: the recorder is filled
//! from values the scheduler already computed, no scheduling decision
//! ever reads it, and compiled output is bit-identical recorder-on vs
//! recorder-off (the `telemetry_overhead` bench enforces this for every
//! `CompilerKind`). Like `ScoringTelemetry`, the event stream may differ
//! between scoring backends (serial vs parallel candidate evaluation
//! reports different margins) — it describes work performed, not the
//! result — so it is carried *outside* the golden-compared scheduler
//! statistics and is never persisted or sent in a compiled outcome.

use crate::span::escape_json_into;

/// One recorded compile decision. `Copy` and free of heap pointers by
/// design: pushing an event is a couple of word stores into the
/// preallocated ring, nothing more.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlightEvent {
    /// A scheduler iteration (or perm-route round) opened a frontier
    /// layer that needed movement.
    LayerOpened {
        /// Iteration / round ordinal (1-based, monotone within a run).
        layer: u64,
        /// Frontier gates visible when the layer opened.
        ready_gates: u64,
    },
    /// A layer finished: some frontier gates became executable.
    LayerClosed {
        /// Iteration / round ordinal the event closes.
        layer: u64,
        /// Gates executed (scheduler) or planned gates realised
        /// co-trapped (perm-route) this layer.
        executed: u64,
    },
    /// The candidate scoring pass chose a winner.
    CandidateChosen {
        /// Iteration ordinal the choice belongs to.
        layer: u64,
        /// Index of the winning candidate in the enumeration order.
        candidate: u64,
        /// The winning heuristic score (its `f64::to_bits`).
        score_bits: u64,
        /// Runner-up margin: second-best score minus best score
        /// (`f64::to_bits`). NaN bits when no runner-up exists or the
        /// scoring backend does not track one (the parallel crew merges
        /// shard winners only).
        margin_bits: u64,
    },
    /// The scheduler entered its deterministic stall-fallback router.
    StallFallback {
        /// Iteration ordinal at entry.
        layer: u64,
        /// Gates still unscheduled when the fallback engaged.
        remaining: u64,
    },
    /// A shuttle was executed (one ion moved between traps).
    Shuttle {
        /// The program qubit that moved.
        qubit: u64,
        /// Source trap index.
        from_trap: u64,
        /// Destination trap index.
        to_trap: u64,
        /// Junctions crossed en route (the dominant cost term).
        junctions: u64,
        /// Chain length left behind at the source.
        source_chain_len: u64,
        /// Chain length after arrival at the destination.
        dest_chain_len: u64,
    },
    /// A swap schedule realised one trap's layer-to-layer permutation.
    SwapSchedule {
        /// The trap whose chain was reordered.
        trap: u64,
        /// Schedule kind tag (0 = bubble sort, 1 = recursive-split-two).
        kind: u8,
        /// Comparators the data-independent network emitted.
        emitted: u64,
        /// Comparators actually selected (SWAP gates issued).
        selected: u64,
    },
}

/// Schedule-kind tag for [`FlightEvent::SwapSchedule`]: bubble sort.
pub const SWAP_SCHEDULE_BUBBLE: u8 = 0;
/// Schedule-kind tag for [`FlightEvent::SwapSchedule`]: recursive split.
pub const SWAP_SCHEDULE_RECURSIVE: u8 = 1;

impl FlightEvent {
    /// The event's JSONL rendering — one complete JSON object, same
    /// escaping rules as the slow-request log so both streams diff and
    /// grep uniformly.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_jsonl(&mut out);
        out
    }

    fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write;
        let event = |out: &mut String, name: &str| {
            out.push_str("{\"event\":\"");
            escape_json_into(name, out);
            out.push('"');
        };
        match self {
            FlightEvent::LayerOpened { layer, ready_gates } => {
                event(out, "layer_opened");
                let _ = write!(out, ",\"layer\":{layer},\"ready_gates\":{ready_gates}}}");
            }
            FlightEvent::LayerClosed { layer, executed } => {
                event(out, "layer_closed");
                let _ = write!(out, ",\"layer\":{layer},\"executed\":{executed}}}");
            }
            FlightEvent::CandidateChosen { layer, candidate, score_bits, margin_bits } => {
                event(out, "candidate_chosen");
                let _ = write!(out, ",\"layer\":{layer},\"candidate\":{candidate}");
                let score = f64::from_bits(*score_bits);
                let margin = f64::from_bits(*margin_bits);
                // NaN/inf are not JSON numbers; absent margins render null.
                if score.is_finite() {
                    let _ = write!(out, ",\"score\":{score}");
                } else {
                    out.push_str(",\"score\":null");
                }
                if margin.is_finite() {
                    let _ = write!(out, ",\"margin\":{margin}");
                } else {
                    out.push_str(",\"margin\":null");
                }
                out.push('}');
            }
            FlightEvent::StallFallback { layer, remaining } => {
                event(out, "stall_fallback");
                let _ = write!(out, ",\"layer\":{layer},\"remaining\":{remaining}}}");
            }
            FlightEvent::Shuttle {
                qubit,
                from_trap,
                to_trap,
                junctions,
                source_chain_len,
                dest_chain_len,
            } => {
                event(out, "shuttle");
                let _ = write!(
                    out,
                    ",\"qubit\":{qubit},\"from_trap\":{from_trap},\"to_trap\":{to_trap},\
                     \"junctions\":{junctions},\"source_chain_len\":{source_chain_len},\
                     \"dest_chain_len\":{dest_chain_len}}}"
                );
            }
            FlightEvent::SwapSchedule { trap, kind, emitted, selected } => {
                event(out, "swap_schedule");
                let _ = write!(
                    out,
                    ",\"trap\":{trap},\"kind\":{kind},\"emitted\":{emitted},\
                     \"selected\":{selected}}}"
                );
            }
        }
    }
}

/// Default ring capacity a compile's recorder is created with: enough
/// for the full decision stream of mid-size circuits, and a bounded,
/// predictable ~300 KiB worst case for pathological ones.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// A bounded, preallocated structured event ring. Pushing beyond
/// capacity overwrites the oldest event — never reallocates.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    /// Event storage; allocated once at construction, length grows to
    /// `capacity` and then stays there forever.
    buf: Vec<FlightEvent>,
    /// Index of the *oldest* event once the ring has wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder whose ring holds `capacity` events (at least 1). The
    /// full buffer is reserved here; recording never allocates.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { buf: Vec::with_capacity(capacity.max(1)), head: 0, dropped: 0 }
    }

    /// A recorder at [`DEFAULT_RECORDER_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_RECORDER_CAPACITY)
    }

    /// Records one event, overwriting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, event: FlightEvent) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.buf.len();
            self.dropped += 1;
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's capacity in events.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Freezes the recorder into an immutable [`FlightRecording`]
    /// (events in oldest-first order), consuming it.
    pub fn into_recording(self) -> FlightRecording {
        let capacity = self.capacity();
        let dropped = self.dropped;
        let mut events = Vec::with_capacity(self.buf.len());
        events.extend(self.events().copied());
        FlightRecording { events, dropped, capacity }
    }
}

/// The immutable product of a finished recorder: the retained event
/// stream (oldest first) plus how much the bounded ring had to drop.
/// Carried alongside a compile outcome (never inside the golden-compared
/// scheduler statistics, never on the wire as part of an outcome) and
/// kept alive by the service's trace journal next to the request span.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecording {
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events the bounded ring overwrote.
    pub dropped: u64,
    /// The ring capacity the recording was taken with.
    pub capacity: usize,
}

impl FlightRecording {
    /// Renders the recording as JSONL: one event object per line,
    /// prefixed by a header line carrying the drop/capacity accounting —
    /// the same schema family as the slow-request log, so one tool reads
    /// both.
    pub fn to_jsonl_lines(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(32 + self.events.len() * 96);
        let _ = write!(
            out,
            "{{\"event\":\"recording\",\"events\":{},\"dropped\":{},\"capacity\":{}}}",
            self.events.len(),
            self.dropped,
            self.capacity
        );
        for event in &self.events {
            out.push('\n');
            event.write_jsonl(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuttle(n: u64) -> FlightEvent {
        FlightEvent::Shuttle {
            qubit: n,
            from_trap: 0,
            to_trap: 1,
            junctions: 2,
            source_chain_len: 3,
            dest_chain_len: 4,
        }
    }

    #[test]
    fn ring_drops_oldest_without_reallocating() {
        let mut recorder = FlightRecorder::new(4);
        let initial_capacity = recorder.capacity();
        let base = recorder.buf.as_ptr();
        for n in 0..10 {
            recorder.record(shuttle(n));
        }
        // Same allocation, same capacity: the ring never grew.
        assert_eq!(recorder.capacity(), initial_capacity);
        assert_eq!(recorder.buf.as_ptr(), base, "ring reallocated");
        assert_eq!(recorder.len(), 4);
        assert_eq!(recorder.dropped(), 6);
        // Oldest events went first: 0..6 were overwritten, 6..10 remain
        // in order.
        let qubits: Vec<u64> = recorder
            .events()
            .map(|e| match e {
                FlightEvent::Shuttle { qubit, .. } => *qubit,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(qubits, vec![6, 7, 8, 9]);
        let recording = recorder.into_recording();
        assert_eq!(recording.events.len(), 4);
        assert_eq!(recording.dropped, 6);
        assert_eq!(recording.capacity, 4);
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut recorder = FlightRecorder::new(8);
        recorder.record(FlightEvent::LayerOpened { layer: 1, ready_gates: 3 });
        recorder.record(FlightEvent::LayerClosed { layer: 1, executed: 2 });
        assert_eq!(recorder.len(), 2);
        assert_eq!(recorder.dropped(), 0);
        assert!(!recorder.is_empty());
        let events: Vec<FlightEvent> = recorder.events().copied().collect();
        assert_eq!(events[0], FlightEvent::LayerOpened { layer: 1, ready_gates: 3 });
        assert_eq!(events[1], FlightEvent::LayerClosed { layer: 1, executed: 2 });
    }

    #[test]
    fn events_render_as_one_json_object_per_line() {
        let mut recorder = FlightRecorder::new(8);
        recorder.record(FlightEvent::LayerOpened { layer: 1, ready_gates: 5 });
        recorder.record(FlightEvent::CandidateChosen {
            layer: 1,
            candidate: 3,
            score_bits: 1.5f64.to_bits(),
            margin_bits: 0.25f64.to_bits(),
        });
        recorder.record(FlightEvent::CandidateChosen {
            layer: 2,
            candidate: 0,
            score_bits: 2.0f64.to_bits(),
            margin_bits: f64::NAN.to_bits(),
        });
        recorder.record(FlightEvent::StallFallback { layer: 3, remaining: 7 });
        recorder.record(FlightEvent::SwapSchedule {
            trap: 2,
            kind: SWAP_SCHEDULE_RECURSIVE,
            emitted: 9,
            selected: 4,
        });
        let recording = recorder.into_recording();
        let text = recording.to_jsonl_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "header plus one line per event");
        assert_eq!(lines[0], "{\"event\":\"recording\",\"events\":5,\"dropped\":0,\"capacity\":8}");
        assert!(lines[1].contains("\"event\":\"layer_opened\""));
        assert!(lines[2].contains("\"score\":1.5") && lines[2].contains("\"margin\":0.25"));
        assert!(lines[3].contains("\"margin\":null"), "NaN margins render null: {}", lines[3]);
        assert!(lines[4].contains("\"remaining\":7"));
        assert!(lines[5].contains("\"selected\":4"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "complete object: {line}");
        }
    }
}
