//! Prometheus-style text exposition rendering.
//!
//! This is a deliberately small, std-only writer for the subset of the
//! Prometheus text format the service needs: `# HELP`/`# TYPE` headers,
//! plain `name{labels} value` samples, and cumulative histogram triplets
//! (`_bucket` with `le` labels, `_sum`, `_count`). Values are integers —
//! the service reports nanoseconds and counts, never floats — which keeps
//! rendering allocation-light and bit-stable.

use crate::hist::{bucket_upper_bound, HistogramSnapshot};

/// Incremental builder for a text exposition document.
#[derive(Debug, Default)]
pub struct TextExposition {
    out: String,
}

impl TextExposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is one of `counter`, `gauge`, `histogram`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emit one `name{labels} value` sample line.
    pub fn value(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        self.push_labels(labels, None);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Emit cumulative `_bucket`/`_sum`/`_count` lines for a histogram.
    /// Bucket lines stop at the highest non-empty bucket (plus the required
    /// `+Inf` line) to keep the document compact. A bucket that carries an
    /// exemplar trace id gets an OpenMetrics-style ` # {trace_id="..."}`
    /// suffix naming the most recent trace that landed in it.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let highest = snap.buckets.iter().rposition(|&b| b > 0).map(|i| i + 1).unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &b) in snap.buckets.iter().enumerate().take(highest) {
            cumulative = cumulative.saturating_add(b);
            self.out.push_str(name);
            self.out.push_str("_bucket");
            self.push_labels(labels, Some(&bucket_upper_bound(i).to_string()));
            self.out.push(' ');
            self.out.push_str(&cumulative.to_string());
            let exemplar = snap.exemplars[i];
            if exemplar != 0 {
                self.out.push_str(" # {trace_id=\"");
                self.out.push_str(&format!("{exemplar:016x}"));
                self.out.push_str("\"}");
            }
            self.out.push('\n');
        }
        self.out.push_str(name);
        self.out.push_str("_bucket");
        self.push_labels(labels, Some("+Inf"));
        self.out.push(' ');
        self.out.push_str(&snap.count().to_string());
        self.out.push('\n');
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.push_labels(labels, None);
        self.out.push(' ');
        self.out.push_str(&snap.sum_ns.to_string());
        self.out.push('\n');
        self.out.push_str(name);
        self.out.push_str("_count");
        self.push_labels(labels, None);
        self.out.push(' ');
        self.out.push_str(&snap.count().to_string());
        self.out.push('\n');
    }

    /// Emit derived nearest-rank quantile gauges for a histogram family as
    /// `{name}_p50_ns` / `_p90_ns` / `_p99_ns` / `_max_ns` sample lines.
    /// Callers emit the four `# TYPE … gauge` headers once per family.
    pub fn quantile_gauges(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        for (suffix, v) in [
            ("_p50_ns", snap.p50()),
            ("_p90_ns", snap.p90()),
            ("_p99_ns", snap.p99()),
            ("_max_ns", snap.max_ns),
        ] {
            let full = format!("{name}{suffix}");
            self.value(&full, labels, v);
        }
    }

    fn push_labels(&mut self, labels: &[(&str, &str)], le: Option<&str>) {
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                self.out.push(',');
            }
            first = false;
            self.out.push_str(k);
            self.out.push_str("=\"");
            crate::span::escape_json_into(v, &mut self.out);
            self.out.push('"');
        }
        if let Some(le) = le {
            if !first {
                self.out.push(',');
            }
            self.out.push_str("le=\"");
            self.out.push_str(le);
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// Finalise and return the rendered document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    #[test]
    fn counters_and_labels_render() {
        let mut e = TextExposition::new();
        e.header("ssync_jobs_total", "counter", "Jobs accepted.");
        e.value("ssync_jobs_total", &[], 42);
        e.value("ssync_jobs_total", &[("priority", "high")], 7);
        let doc = e.finish();
        assert!(doc.contains("# HELP ssync_jobs_total Jobs accepted.\n"));
        assert!(doc.contains("# TYPE ssync_jobs_total counter\n"));
        assert!(doc.contains("\nssync_jobs_total 42\n"));
        assert!(doc.contains("ssync_jobs_total{priority=\"high\"} 7\n"));
    }

    #[test]
    fn histogram_lines_are_cumulative_and_end_with_inf() {
        let h = LatencyHistogram::new();
        h.record_ns(1); // bucket 1
        h.record_ns(3); // bucket 2
        h.record_ns(3); // bucket 2
        let mut e = TextExposition::new();
        e.histogram("ssync_lat_ns", &[("stage", "compile")], &h.snapshot());
        let doc = e.finish();
        assert!(doc.contains("ssync_lat_ns_bucket{stage=\"compile\",le=\"1\"} 1\n"));
        assert!(doc.contains("ssync_lat_ns_bucket{stage=\"compile\",le=\"3\"} 3\n"));
        assert!(doc.contains("ssync_lat_ns_bucket{stage=\"compile\",le=\"+Inf\"} 3\n"));
        assert!(doc.contains("ssync_lat_ns_sum{stage=\"compile\"} 7\n"));
        assert!(doc.contains("ssync_lat_ns_count{stage=\"compile\"} 3\n"));
    }

    #[test]
    fn bucket_lines_carry_exemplar_suffixes() {
        let h = LatencyHistogram::new();
        h.record_ns(1); // bucket 1, no exemplar
        h.record_ns_with_exemplar(3, 0xbeef); // bucket 2
        let mut e = TextExposition::new();
        e.histogram("ssync_lat_ns", &[("stage", "end_to_end")], &h.snapshot());
        let doc = e.finish();
        assert!(doc.contains("ssync_lat_ns_bucket{stage=\"end_to_end\",le=\"1\"} 1\n"));
        assert!(doc.contains(
            "ssync_lat_ns_bucket{stage=\"end_to_end\",le=\"3\"} 2 # {trace_id=\"000000000000beef\"}\n"
        ));
        assert!(!doc.contains("le=\"+Inf\"} 2 #"), "the +Inf line stays exemplar-free: {doc}");
    }

    #[test]
    fn quantile_gauges_render_all_four() {
        let h = LatencyHistogram::new();
        h.record_ns(1000);
        let mut e = TextExposition::new();
        e.quantile_gauges("ssync_lat", &[("priority", "batch")], &h.snapshot());
        let doc = e.finish();
        for suffix in ["p50", "p90", "p99", "max"] {
            assert!(
                doc.contains(&format!("ssync_lat_{suffix}_ns{{priority=\"batch\"}} 1000\n")),
                "missing {suffix} in: {doc}"
            );
        }
    }

    #[test]
    fn empty_histogram_renders_zero_count() {
        let mut e = TextExposition::new();
        e.histogram("ssync_lat_ns", &[], &HistogramSnapshot::default());
        let doc = e.finish();
        assert!(doc.contains("ssync_lat_ns_bucket{le=\"+Inf\"} 0\n"));
        assert!(doc.contains("ssync_lat_ns_count 0\n"));
    }
}
