// Hand-written corpus entry: user gate definitions inlined recursively.
// A Cuccaro-style MAJ/UMA ripple-carry step built from nested
// subroutines (no includes beyond the standard library), plus a
// parameterised two-level rotation macro.
OPENQASM 2.0;
include "qelib1.inc";

qreg cin[1];
qreg a[3];
qreg b[3];
qreg cout[1];
creg result[4];

// majority / unmajority-and-add: the classic adder building blocks.
gate maj a, b, c {
  cx c, b;
  cx c, a;
  ccx a, b, c;
}
gate uma a, b, c {
  ccx a, b, c;
  cx c, a;
  cx a, b;
}

// A two-level macro: wiggle() calls twist(), which calls the stdlib.
gate twist(theta) x, y {
  rz(theta / 2) x;
  cx x, y;
  rz(-theta / 2) y;
}
gate wiggle(theta, phi) x, y {
  twist(theta) x, y;
  twist(phi) y, x;
}

maj cin[0], b[0], a[0];
maj a[0], b[1], a[1];
maj a[1], b[2], a[2];
cx a[2], cout[0];
uma a[1], b[2], a[2];
uma a[0], b[1], a[1];
uma cin[0], b[0], a[0];

wiggle(pi / 3, -pi / 7) a[0], b[0];
wiggle(0.25, 2 ^ -2) a[1], b[1];

measure b[0] -> result[0];
measure b[1] -> result[1];
measure b[2] -> result[2];
measure cout[0] -> result[3];
