// Hand-written corpus entry: the qelib1 standard-library surface.
// Exercises u1/u2/u3 lowering, phase-family gates, controlled
// decompositions, Toffoli/Fredkin networks, register broadcasting,
// expression arithmetic, and measure/reset/if stripping.
OPENQASM 2.0;
include "qelib1.inc";

qreg q[4];
qreg anc[2];
creg c[4];

// Single-qubit zoo (broadcast over the whole register where sensible).
h q;
id q[0];
x q[1];
y q[2];
z q[3];
s q[0];
sdg q[1];
t q[2];
tdg q[3];
sx q[0];
u1(pi / 8) q[1];
u2(0, pi) q[2];
u3(pi / 2, -pi / 4, pi / 4) q[3];
rx(0.1) q[0];
ry(-0.2) q[1];
rz(sin(pi / 6)) q[2];

// Two-qubit zoo.
cx q[0], q[1];
cz q[1], q[2];
cy q[2], q[3];
ch q[0], q[2];
cp(pi / 16) q[1], q[3];
cu1(-pi / 16) q[0], q[3];
crx(0.3) q[0], q[1];
cry(0.4) q[1], q[2];
crz(0.5) q[2], q[3];
cu3(pi / 5, 0.1, -0.1) q[0], q[2];
swap q[1], q[2];
rxx(pi / 2) q[0], q[3];
rzz(1.0 / 3.0) q[1], q[3];

// Three-qubit networks onto the ancillas.
ccx q[0], q[1], anc[0];
cswap q[2], anc[0], anc[1];

// Classical plumbing the lowering strips (with warning counters).
reset anc[0];
measure q -> c;
if (c == 3) x anc[1];
