// Hand-written corpus entry: barriers as dependency fences.
// A GHZ ladder with barriers separating preparation, entanglement and
// un-computation; the fence collapses into program order on the
// per-qubit dependency DAG (see docs/WORKLOADS.md).
OPENQASM 2.0;
include "qelib1.inc";

qreg q[6];
creg c[6];

h q[0];
barrier q[0], q[1];
cx q[0], q[1];
cx q[1], q[2];
barrier q;
cx q[2], q[3];
cx q[3], q[4];
cx q[4], q[5];
barrier q[3], q[4], q[5];
// Un-compute the upper half under its own fence.
cx q[4], q[5];
cx q[3], q[4];
barrier q;
measure q -> c;
