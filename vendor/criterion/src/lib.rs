//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) as a plain wall-clock harness:
//! each benchmark runs a warm-up pass plus `sample_size` timed samples and
//! reports the per-iteration mean, **median** and minimum alongside the
//! sample count. The median is the robust location estimate — one
//! descheduled sample skews the mean but leaves the median untouched —
//! so trajectory comparisons across commits should prefer it.
//!
//! Environment knobs (used by CI):
//!
//! * `SSYNC_BENCH_QUICK=1` — clamp every benchmark to 3 samples.
//! * `SSYNC_BENCH_JSON=<path>` — additionally dump all results as a JSON
//!   array of `{"name": ..., "mean_ns": ..., "median_ns": ...,
//!   "p99_ns": ..., "min_ns": ..., "samples": ...}` objects (the format
//!   committed in `BENCH_scheduling.json`). The p99 is the
//!   nearest-rank 99th percentile of the samples — with the default 10
//!   samples it equals the maximum, a tail indicator rather than a
//!   precise quantile.

use std::fmt;
use std::fs;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark path, e.g. `group/function/parameter`.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median wall-clock nanoseconds per iteration (midpoint average for
    /// even sample counts) — robust against scheduler-noise outliers.
    pub median_ns: f64,
    /// Nearest-rank 99th-percentile sample in nanoseconds per iteration
    /// (the maximum for sample counts under 100) — the latency tail.
    pub p99_ns: f64,
    /// Fastest sample in nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Median of a sample set (midpoint average for even counts). The slice
/// is sorted in place.
fn median_of(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are never NaN"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Nearest-rank 99th percentile. The slice is sorted in place; for fewer
/// than 100 samples this is simply the maximum.
fn p99_of(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are never NaN"));
    let n = samples.len();
    let rank = ((n as f64 * 0.99).ceil() as usize).clamp(1, n);
    samples[rank - 1]
}

/// Identifier of a parameterised benchmark (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std_black_box(routine());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn quick_mode() -> bool {
    std::env::var("SSYNC_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Aggregates one benchmark's samples into a printed [`BenchResult`];
/// `None` when nothing was timed.
fn summarize(name: String, samples_ns: &[f64]) -> Option<BenchResult> {
    if samples_ns.is_empty() {
        return None;
    }
    let n = samples_ns.len();
    let mean = samples_ns.iter().sum::<f64>() / n as f64;
    let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let median = median_of(&mut samples_ns.to_vec());
    let p99 = p99_of(&mut samples_ns.to_vec());
    let result = BenchResult {
        name,
        mean_ns: mean,
        median_ns: median,
        p99_ns: p99,
        min_ns: min,
        samples: n,
    };
    println!(
        "{:<56} mean {:>12.1} ns  median {:>12.1} ns  p99 {:>12.1} ns  min {:>12.1} ns  ({} samples)",
        result.name, result.mean_ns, result.median_ns, result.p99_ns, result.min_ns, result.samples
    );
    Some(result)
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `routine` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut routine: F,
    ) -> &mut Self {
        let sample_size = if quick_mode() { self.sample_size.min(3) } else { self.sample_size };
        let mut bencher = Bencher { sample_size, samples_ns: Vec::new() };
        routine(&mut bencher);
        self.record(id.to_string(), &bencher);
        self
    }

    /// Runs `routine` with `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let sample_size = if quick_mode() { self.sample_size.min(3) } else { self.sample_size };
        let mut bencher = Bencher { sample_size, samples_ns: Vec::new() };
        routine(&mut bencher, input);
        self.record(id.to_string(), &bencher);
        self
    }

    /// Ends the group (kept for API parity; results are recorded eagerly).
    pub fn finish(&mut self) {}

    fn record(&mut self, id: String, bencher: &Bencher) {
        if let Some(result) = summarize(format!("{}/{}", self.name, id), &bencher.samples_ns) {
            self.criterion.results.push(result);
        }
    }
}

/// The benchmark harness driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group (default sample size 10).
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), criterion: self, sample_size: 10 }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, routine: F) {
        let sample_size = if quick_mode() { 3 } else { 10 };
        let mut bencher = Bencher { sample_size, samples_ns: Vec::new() };
        let mut routine = routine;
        routine(&mut bencher);
        if let Some(result) = summarize(id.to_string(), &bencher.samples_ns) {
            self.results.push(result);
        }
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the JSON dump if `SSYNC_BENCH_JSON` is set. Called by the
    /// `criterion_main!`-generated `main` after every group has run.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("SSYNC_BENCH_JSON") else { return };
        if path.is_empty() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"p99_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{}\n",
                r.name.replace('"', "'"),
                r.mean_ns,
                r.median_ns,
                r.p99_ns,
                r.min_ns,
                r.samples,
                comma
            ));
        }
        out.push_str("]\n");
        if let Err(e) = fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote benchmark JSON to {path}");
        }
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running every group then finalizing the JSON dump.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_records_results() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("f", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("h", 3), &3, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].name, "g/f");
        assert_eq!(c.results()[1].name, "g/h/3");
        assert!(c.results()[0].mean_ns >= 0.0);
        assert!(c.results()[0].median_ns >= c.results()[0].min_ns);
        assert!(c.results()[0].p99_ns >= c.results()[0].median_ns);
        assert_eq!(c.results()[0].samples, 2);
    }

    #[test]
    fn p99_is_the_nearest_rank_tail() {
        // Under 100 samples the nearest-rank p99 is the maximum.
        assert_eq!(p99_of(&mut [3.0, 1.0, 2.0]), 3.0);
        assert_eq!(p99_of(&mut [5.0]), 5.0);
        // At exactly 100 samples it is the 99th sorted value.
        let mut hundred: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p99_of(&mut hundred), 99.0);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        assert_eq!(median_of(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_of(&mut [5.0]), 5.0);
        // One descheduled 100× sample moves the mean, not the median.
        let mut noisy = [10.0, 11.0, 9.0, 1000.0, 10.0];
        assert_eq!(median_of(&mut noisy), 10.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
