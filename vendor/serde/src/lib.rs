//! Offline stand-in for `serde`.
//!
//! The workspace builds hermetically (no crates.io access) and never
//! performs real (de)serialization, so `Serialize` / `Deserialize` are
//! plain marker traits here and the derives emit empty impls. Replace the
//! `vendor/serde*` path dependencies with the real crates to regain full
//! serde behaviour — the source code is already written against the real
//! API surface it uses (`use serde::{Deserialize, Serialize}` + derives).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided: nothing in
/// the workspace names the trait directly).
pub trait Deserialize {}
