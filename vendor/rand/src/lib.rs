//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Implements exactly the subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — on top
//! of a SplitMix64 generator. The sequences differ from the real `rand`
//! crate, but every generator in the workspace is seeded explicitly, so
//! all that matters is determinism per seed, which SplitMix64 provides.

use std::ops::Range;

/// Minimal core RNG interface (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from uniform random bits (stand-in for `Standard`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range` (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

/// High-level sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the uniform bit stream.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stand-in for
    /// `rand::rngs::StdRng`: same name, same seeding API, different (but
    /// equally deterministic) output sequence.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
