//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `prop_oneof!`, `proptest::collection::vec`, `ProptestConfig`, and the
//! `proptest!` macro with `prop_assume!` / `prop_assert!` /
//! `prop_assert_eq!`. Unlike real proptest there is no shrinking: each
//! test simply runs `cases` deterministic samples (seeded from the test
//! name), which keeps failures reproducible without any persistence files.

/// Deterministic RNG used to drive sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A generator of test values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy behind a sampling closure (used by
        /// `prop_oneof!` to erase heterogeneous branch types).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { sampler: Box::new(move |rng| self.sample(rng)) }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<V> {
        sampler: Box<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (self.sampler)(rng)
        }
    }

    /// Uniform choice between boxed branches (behind `prop_oneof!`).
    pub struct Union<V> {
        branches: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given branches.
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! requires at least one branch");
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.branches.len() as u64) as usize;
            self.branches[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample an empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration and state.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` samples per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

/// Derives a deterministic seed from a test name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{seed_from_name, TestRng};
}

// Re-exported at the root so `proptest::collection::vec` resolves too.
pub use strategy::Strategy;

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($branch)),+
        ])
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts within a property (plain `assert!` in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality within a property (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines deterministic sampling-based property tests.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of `proptest!` — one item per test function.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                let run = |case: u32| {
                    let _ = case;
                    $(let $arg = $arg;)*
                    $body
                };
                run(case);
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn prop_map_and_oneof_compose() {
        let strat =
            prop_oneof![(1usize..3).prop_map(|x| x * 10), (5usize..6).prop_map(|x| x * 100),];
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v == 10 || v == 20 || v == 500);
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = crate::collection::vec((0usize..4, 0usize..4), 0..7);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_runnable_tests(x in 0usize..10, y in 0usize..10) {
            prop_assume!(x != 11);
            prop_assert!(x < 10 && y < 10);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
