//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in a hermetic environment without crates.io
//! access, and nothing in the repository performs real (de)serialization —
//! the `Serialize` / `Deserialize` derives only need to compile. This
//! proc-macro crate therefore emits empty marker-trait impls for the
//! derived type. Swap the `vendor/serde*` path dependencies for the real
//! crates to regain full serde behaviour.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct` / `enum` keyword.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    panic!("serde_derive stub: could not find a type name in the derive input");
}

/// Rejects generic types: none of the workspace's serde-derived types are
/// generic, and supporting generics would require a real parser.
fn assert_not_generic(input: &TokenStream, name: &str) {
    let mut prev_was_name = false;
    for tt in input.clone() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == name => prev_was_name = true,
            TokenTree::Punct(p) if prev_was_name && p.as_char() == '<' => {
                panic!("serde_derive stub: generic type `{name}` is not supported");
            }
            _ => prev_was_name = false,
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_not_generic(&input, &name);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_not_generic(&input, &name);
    format!("impl ::serde::Deserialize for {name} {{}}").parse().unwrap()
}
