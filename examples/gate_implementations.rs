//! Gate-implementation study: compile once, then evaluate the same
//! schedule under the FM, PM, AM1 and AM2 two-qubit gate models (the
//! Fig. 13 style of analysis), plus the idealised upper bounds of Fig. 16.
//!
//! ```text
//! cargo run --release -p ssync-examples --bin gate_implementations
//! ```

use ssync_arch::QccdTopology;
use ssync_circuit::generators::{qaoa_nearest_neighbor, qft};
use ssync_core::{CompilerConfig, IdealizationMode, SSyncCompiler};
use ssync_sim::{ExecutionTracer, GateImplementation};

fn main() {
    let device = QccdTopology::grid(2, 3, 10);
    let compiler = SSyncCompiler::new(CompilerConfig::default());

    for circuit in [qaoa_nearest_neighbor(32, 4), qft(32)] {
        let outcome = compiler.compile(&circuit, &device).expect("circuit fits");
        println!(
            "\n{} ({} two-qubit gates, {} shuttles, {} swaps)",
            circuit.name(),
            outcome.counts().two_qubit_gates,
            outcome.counts().shuttles,
            outcome.counts().swap_gates
        );
        println!("  gate implementation  exec time (ms)   success");
        for gate_impl in GateImplementation::ALL {
            let tracer = ExecutionTracer { gate_impl, ..compiler.tracer() };
            let report = tracer.evaluate(outcome.program());
            println!(
                "  {:<20} {:>14.1} {:>9.4}",
                gate_impl.label(),
                report.total_time_us / 1e3,
                report.success_rate
            );
        }
        println!("  optimality bounds (FM gates):");
        let tracer = compiler.tracer();
        for mode in IdealizationMode::ALL {
            let report = outcome.evaluate_with(&tracer, mode);
            println!("    {:<16} success {:>9.4}", mode.label(), report.success_rate);
        }
    }
    println!("\nShort-range workloads favour the AM2 implementation; long-range ones");
    println!("favour FM/PM, matching the paper's Fig. 13.");
}
