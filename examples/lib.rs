//! This crate only hosts the runnable examples (`quickstart`,
//! `topology_sweep`, `mapping_tradeoffs`, `gate_implementations`). See each
//! binary for the interesting code; run them with e.g.
//! `cargo run --release -p ssync-examples --bin quickstart`.
