//! Initial-mapping trade-offs: gathering vs even-divided vs STA for an
//! application whose qubits mostly talk to their neighbours (QAOA) and one
//! with long-range structure (QFT) — the Fig. 12 style of analysis.
//!
//! ```text
//! cargo run --release -p ssync-examples --bin mapping_tradeoffs
//! ```

use ssync_arch::QccdTopology;
use ssync_circuit::generators::{qaoa_nearest_neighbor, qft};
use ssync_circuit::Circuit;
use ssync_core::{CompilerConfig, InitialMapping, SSyncCompiler};

fn run(circuit: &Circuit, device: &QccdTopology) {
    println!(
        "\n{} ({} qubits, {} two-qubit gates) on {}",
        circuit.name(),
        circuit.num_qubits(),
        circuit.two_qubit_gate_count(),
        device.name()
    );
    println!(
        "  {:<14} {:>8} {:>8} {:>14} {:>12}",
        "mapping", "shuttles", "swaps", "exec time (ms)", "success"
    );
    for mapping in InitialMapping::ALL {
        let config = CompilerConfig::default().with_initial_mapping(mapping);
        let outcome = SSyncCompiler::new(config)
            .compile(circuit, device)
            .expect("circuit fits on the device");
        println!(
            "  {:<14} {:>8} {:>8} {:>14.1} {:>12.4}",
            mapping.label(),
            outcome.counts().shuttles,
            outcome.counts().swap_gates,
            outcome.report().total_time_us / 1e3,
            outcome.report().success_rate
        );
    }
}

fn main() {
    let device = QccdTopology::grid(2, 3, 10);
    run(&qaoa_nearest_neighbor(32, 4), &device);
    run(&qft(32), &device);
    println!("\nGathering minimises shuttles but packs long FM chains (slower gates);");
    println!("even-divided keeps chains short at the price of more shuttling — the");
    println!("same tension the paper highlights in Fig. 12.");
}
