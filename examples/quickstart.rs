//! Quickstart: compile a QFT circuit for a two-trap linear QCCD device and
//! inspect what the compiler did.
//!
//! ```text
//! cargo run --release -p ssync-examples --bin quickstart
//! ```

use ssync_arch::QccdTopology;
use ssync_circuit::generators::qft;
use ssync_core::{CompilerConfig, SSyncCompiler};

fn main() {
    // 1. A quantum program: the 16-qubit Quantum Fourier Transform.
    let circuit = qft(16);
    println!(
        "circuit: {} ({} qubits, {} two-qubit gates)",
        circuit.name(),
        circuit.num_qubits(),
        circuit.two_qubit_gate_count()
    );

    // 2. A QCCD device: two traps of 10 slots connected by a shuttle path.
    let device = QccdTopology::linear(2, 10);
    println!("device:  {device}");

    // 3. Compile with the default configuration (gathering initial mapping,
    //    FM gates, the paper's Sec. 4.2 hyper-parameters).
    let compiler = SSyncCompiler::new(CompilerConfig::default());
    let outcome = compiler.compile(&circuit, &device).expect("circuit fits on the device");

    // 4. What did the compiler insert, and what does it cost?
    let counts = outcome.counts();
    let report = outcome.report();
    println!("\ncompiled in {:.1} ms", outcome.compile_time().as_secs_f64() * 1e3);
    println!("  two-qubit gates : {}", counts.two_qubit_gates);
    println!("  inserted SWAPs  : {}", counts.swap_gates);
    println!("  shuttles        : {}", counts.shuttles);
    println!("  ion reorders    : {}", counts.reorders);
    println!("  execution time  : {:.1} ms", report.total_time_us / 1e3);
    println!("  success rate    : {:.4}", report.success_rate);

    // 5. The first few hardware operations, for a feel of the output format.
    println!("\nfirst 10 hardware operations:");
    for op in outcome
        .program()
        .ops()
        .iter()
        .filter(|o| !matches!(o, ssync_sim::ScheduledOp::SingleQubitGate { .. }))
        .take(10)
    {
        println!("  {op}");
    }
}
