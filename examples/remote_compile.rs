//! Compile a circuit through the `ssync-serviced` IPC front-end.
//!
//! Spawns the daemon as a child process in `--stdio` mode, speaks the
//! length-prefixed wire protocol through `ssync_service::client`, and
//! verifies the remote outcome is **bit-identical** to compiling directly
//! in-process with `compile_on` — the whole point of the service layer:
//! it changes where a compile runs, never what it produces. A second leg
//! restarts the daemon as a hardened TCP listener (`--tcp 127.0.0.1:0`
//! with an auth token and `--port-file` discovery) and repeats the proof
//! over a real socket with the retrying `submit_with_backoff` client.
//!
//! ```sh
//! cargo run --release -p ssync-examples --bin remote_compile
//! ```
//!
//! The daemon binary is located next to this example (cargo puts every
//! workspace binary in the same target directory); set `SSYNC_SERVICED`
//! to point elsewhere.

use ssync_arch::{Device, QccdTopology};
use ssync_baselines::CompilerKind;
use ssync_circuit::generators::qft;
use ssync_core::CompilerConfig;
use ssync_service::client::ServiceClient;
use ssync_service::wire::{RemoteQasmRequest, RemoteRequest};
use ssync_service::{Priority, TenantId};
use std::process::{Command, Stdio};

fn daemon_path() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("SSYNC_SERVICED") {
        return path.into();
    }
    let mut path = std::env::current_exe().expect("current_exe");
    path.set_file_name("ssync-serviced");
    path
}

fn main() {
    let daemon = daemon_path();
    let mut child = Command::new(&daemon)
        .args(["--stdio", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            panic!(
                "failed to spawn {} ({e}); build it first with \
                 `cargo build -p ssync-service` or set SSYNC_SERVICED",
                daemon.display()
            )
        });
    let mut client = ServiceClient::over(
        child.stdout.take().expect("piped stdout"),
        child.stdin.take().expect("piped stdin"),
    );

    let config = CompilerConfig::default();
    let circuit = qft(16);
    let device_name = "G-2x3";
    println!("compiling {} on {device_name} through {}", circuit.name(), daemon.display());

    let job = client
        .submit(
            &RemoteRequest::new(device_name, circuit.clone(), CompilerKind::SSync, config)
                .with_priority(Priority::High)
                .with_tenant(TenantId::from_name("remote-example")),
        )
        .expect("submit over the wire");
    let remote = client.wait(job).expect("wait over the wire").expect("compiles");

    // The ground truth: the same compile, directly in this process.
    let device = Device::build(QccdTopology::named(device_name).unwrap(), config.weights);
    let direct = CompilerKind::SSync.compile_on(&device, &circuit, &config).expect("compiles");

    assert_eq!(direct.program().ops(), remote.program().ops(), "op streams must match");
    assert_eq!(direct.final_placement(), remote.final_placement(), "placements must match");
    assert_eq!(
        direct.report().success_rate.to_bits(),
        remote.report().success_rate.to_bits(),
        "reports must match bit-for-bit"
    );

    let counts = remote.counts();
    println!("remote outcome: {} shuttles, {} swaps", counts.shuttles, counts.swap_gates);
    println!("  success rate {:.4}", remote.report().success_rate);
    println!("  bit-identical to direct compile_on: yes");

    // The wire-v2 QASM path: ship raw OpenQASM 2.0 source text and let
    // the daemon parse + lower + compile it. Proven bit-identical to
    // parsing locally and compiling in-process.
    let source = ssync_qasm::export(&circuit);
    println!("re-submitting {} as {} bytes of OpenQASM 2.0 source", circuit.name(), source.len());
    let (job, report) = client
        .submit_qasm(
            &RemoteQasmRequest::new(device_name, source.clone(), CompilerKind::SSync, config)
                .with_tenant(TenantId::from_name("remote-example")),
        )
        .expect("submit qasm over the wire");
    assert!(!report.stripped_anything(), "an exported circuit strips nothing");
    let from_qasm = client.wait(job).expect("wait over the wire").expect("compiles");
    let local_parse = ssync_qasm::parse(&source).expect("parses locally").circuit;
    let direct_qasm =
        CompilerKind::SSync.compile_on(&device, &local_parse, &config).expect("compiles");
    assert_eq!(
        direct_qasm.program().ops(),
        from_qasm.program().ops(),
        "qasm path must match local parse + compile_on"
    );
    assert_eq!(direct_qasm.final_placement(), from_qasm.final_placement());
    println!("  daemon-parsed QASM bit-identical to local parse + compile_on: yes");

    let metrics = client.metrics().expect("metrics");
    println!(
        "daemon metrics: {} submitted / {} completed, {} high-priority",
        metrics.jobs_submitted,
        metrics.jobs_completed,
        metrics.submitted_at(Priority::High)
    );

    client.shutdown().expect("shutdown");
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "daemon exits cleanly");
    println!("daemon shut down cleanly");

    // ---- The TCP leg: same conversation, hardened network transport ----
    let dir = std::env::temp_dir().join(format!("ssync-remote-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let port_file = dir.join("port");
    let mut child = Command::new(&daemon)
        .args(["--tcp", "127.0.0.1:0", "--workers", "2"])
        .args(["--auth-token", "example-secret"])
        .args(["--port-file", port_file.to_str().unwrap()])
        .spawn()
        .expect("spawn tcp daemon");
    let mut addr = None;
    for _ in 0..500 {
        if let Ok(contents) = std::fs::read_to_string(&port_file) {
            addr = Some(contents.trim().to_string());
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let addr = addr.expect("daemon published its port within 5s");
    println!("daemon listening on tcp://{addr} (token-authenticated)");

    let mut client =
        ServiceClient::connect_tcp(addr.as_str(), Some("example-secret")).expect("handshake");
    // submit_with_backoff is the production call: on an `Overloaded`
    // shed or a dropped connection it backs off (honouring the server's
    // retry hint) and transparently reconnects. Against this idle daemon
    // it simply succeeds on the first attempt.
    let job = client
        .submit_with_backoff(
            &RemoteRequest::new(device_name, circuit.clone(), CompilerKind::SSync, config)
                .with_tenant(TenantId::from_name("remote-example")),
            &ssync_service::BackoffPolicy::default(),
        )
        .expect("submit over tcp");
    let over_tcp = client.wait(job).expect("wait over tcp").expect("compiles");
    assert_eq!(direct.program().ops(), over_tcp.program().ops(), "tcp leg must match");
    assert_eq!(direct.final_placement(), over_tcp.final_placement());
    println!("  tcp outcome bit-identical to direct compile_on: yes");

    client.shutdown().expect("shutdown");
    drop(client);
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "tcp daemon drains cleanly");
    let _ = std::fs::remove_dir_all(&dir);
    println!("tcp daemon drained cleanly");
}
