//! Topology exploration: run the same application across the paper's
//! L-/G-/S-series devices and compare shuttle counts, execution time and
//! success rate (the Fig. 11 style of analysis, at a laptop-friendly size).
//!
//! ```text
//! cargo run --release -p ssync-examples --bin topology_sweep
//! ```

use ssync_arch::QccdTopology;
use ssync_circuit::generators::qft;
use ssync_core::{CompilerConfig, SSyncCompiler};

fn main() {
    let circuit = qft(24);
    let compiler = SSyncCompiler::new(CompilerConfig::default());
    println!(
        "application: {} ({} qubits, {} two-qubit gates)\n",
        circuit.name(),
        circuit.num_qubits(),
        circuit.two_qubit_gate_count()
    );
    println!(
        "{:<8} {:>6} {:>10} {:>8} {:>14} {:>12}",
        "device", "traps", "capacity", "shuttles", "exec time (ms)", "success"
    );
    for name in ["L-2", "L-4", "L-6", "G-2x2", "G-2x3", "G-3x3", "S-4", "S-6"] {
        let device = QccdTopology::named(name).expect("known device");
        match compiler.compile(&circuit, &device) {
            Ok(outcome) => {
                println!(
                    "{:<8} {:>6} {:>10} {:>8} {:>14.1} {:>12.4}",
                    name,
                    device.num_traps(),
                    device.total_capacity(),
                    outcome.counts().shuttles,
                    outcome.report().total_time_us / 1e3,
                    outcome.report().success_rate
                );
            }
            Err(err) => println!("{name:<8} skipped: {err}"),
        }
    }
    println!("\nGrid-style devices typically give the best time/fidelity balance,");
    println!("matching the paper's Fig. 11 observation.");
}
