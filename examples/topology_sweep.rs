//! Topology exploration: run the same applications across the paper's
//! L-/G-/S-series devices and compare shuttle counts, execution time and
//! success rate (the Fig. 11 style of analysis, at a laptop-friendly size).
//!
//! Each named device is built once as a shared [`Device`] artifact and the
//! whole QFT size sweep compiles against it in one parallel batch.
//!
//! ```text
//! cargo run --release -p ssync-examples --bin topology_sweep
//! ```

use ssync_arch::Device;
use ssync_circuit::generators::qft;
use ssync_core::{CompilerConfig, SSyncCompiler};

fn main() {
    let config = CompilerConfig::default();
    let compiler = SSyncCompiler::new(config);
    let circuits: Vec<_> = [16usize, 24, 32].into_iter().map(qft).collect();
    println!(
        "{:<8} {:>6} {:>10} {:>6} {:>8} {:>14} {:>12}",
        "device", "traps", "capacity", "qubits", "shuttles", "exec time (ms)", "success"
    );
    for name in ["L-2", "L-4", "L-6", "G-2x2", "G-2x3", "G-3x3", "S-4", "S-6"] {
        // Slot graph, trap router and distance matrix are built once here;
        // every compilation below shares them.
        let device = Device::named(name, config.weights).expect("known device");
        let outcomes = compiler.compile_batch(&device, &circuits);
        for (circuit, outcome) in circuits.iter().zip(outcomes) {
            match outcome {
                Ok(outcome) => println!(
                    "{:<8} {:>6} {:>10} {:>6} {:>8} {:>14.1} {:>12.4}",
                    name,
                    device.num_traps(),
                    device.topology().total_capacity(),
                    circuit.num_qubits(),
                    outcome.counts().shuttles,
                    outcome.report().total_time_us / 1e3,
                    outcome.report().success_rate
                ),
                Err(err) => {
                    println!("{name:<8} {} qubits skipped: {err}", circuit.num_qubits())
                }
            }
        }
    }
    println!("\nGrid-style devices typically give the best time/fidelity balance,");
    println!("matching the paper's Fig. 11 observation.");
}
